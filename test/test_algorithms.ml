(* End-to-end tests for MaxFlow, MaxConcurrentFlow, Random-MinCongestion,
   Online-MinCongestion and the baselines, including validation of the
   FPTAS against the exact LP over enumerated trees. *)

let checkb = Alcotest.(check bool)

let make_env ~seed ~n ~sizes ~demand =
  let rng = Rng.create seed in
  let topo = Waxman.generate rng { Waxman.default_params with n } in
  let g = topo.Topology.graph in
  let sessions =
    Array.mapi
      (fun id size -> Session.random rng ~id ~topology_size:n ~size ~demand)
      sizes
  in
  (g, sessions)

(* exact optimum of M1 by enumerating all overlay trees (IP routes) *)
let exact_m1_throughput g overlays =
  let sessions = Array.map Overlay.session overlays in
  let smax = float_of_int (Session.max_size sessions - 1) in
  let trees =
    Array.to_list overlays
    |> List.concat_map (fun o ->
           let k = Session.size (Overlay.session o) in
           List.map
             (fun edge_list ->
               Overlay.tree_of_pairs o
                 ~pairs:(Array.of_list edge_list)
                 ~length:Dijkstra.hop_length)
             (Prufer.enumerate k))
  in
  let nvars = List.length trees in
  let m = Graph.n_edges g in
  let a = Array.make_matrix m nvars 0.0 in
  List.iteri
    (fun j t -> Otree.iter_usage t (fun e c -> a.(e).(j) <- float_of_int c))
    trees;
  let b = Array.init m (fun e -> Graph.capacity g e) in
  let c =
    Array.of_list
      (List.map
         (fun t ->
           float_of_int (Session.receivers sessions.(t.Otree.session_id)) /. smax)
         trees)
  in
  let sol = Simplex.maximize ~c ~a ~b in
  sol.Simplex.objective *. smax

let test_maxflow_matches_exact_lp () =
  (* three random instances with sessions small enough to enumerate *)
  List.iter
    (fun seed ->
      let g, sessions = make_env ~seed ~n:30 ~sizes:[| 5; 4 |] ~demand:100.0 in
      let overlays = Array.map (Overlay.create g Overlay.Ip) sessions in
      let ratio = 0.95 in
      let r = Max_flow.solve g overlays ~epsilon:(Max_flow.ratio_to_epsilon ratio) in
      let fptas = Solution.overall_throughput r.Max_flow.solution in
      let exact = exact_m1_throughput g overlays in
      checkb
        (Printf.sprintf "seed %d: fptas %.2f within [%.2f, %.2f]" seed fptas
           (ratio *. exact) exact)
        true
        (fptas >= (ratio *. exact) -. 1e-6 && fptas <= exact +. 1e-6))
    [ 101; 202; 303 ]

let test_maxflow_feasible () =
  let g, sessions = make_env ~seed:1 ~n:50 ~sizes:[| 7; 5 |] ~demand:100.0 in
  let overlays = Array.map (Overlay.create g Overlay.Ip) sessions in
  let r = Max_flow.solve g overlays ~epsilon:0.05 in
  checkb "feasible" true (Solution.is_feasible r.Max_flow.solution g ~tol:Check.default_tol);
  checkb "positive throughput" true
    (Solution.overall_throughput r.Max_flow.solution > 0.0);
  checkb "counts MST ops" true (r.Max_flow.mst_operations > 0)

let test_maxflow_single_session () =
  let g, sessions = make_env ~seed:2 ~n:40 ~sizes:[| 5 |] ~demand:100.0 in
  let overlay = Overlay.create g Overlay.Ip sessions.(0) in
  let rate, r = Max_flow.solve_single g overlay ~epsilon:0.05 in
  checkb "rate positive" true (rate > 0.0);
  checkb "rate equals solution" true
    (abs_float (rate -. Solution.session_rate r.Max_flow.solution 0) < 1e-9)

let test_maxflow_epsilon_validation () =
  let g, sessions = make_env ~seed:3 ~n:20 ~sizes:[| 3 |] ~demand:1.0 in
  let overlays = Array.map (Overlay.create g Overlay.Ip) sessions in
  Alcotest.check_raises "epsilon too large"
    (Invalid_argument "Max_flow.solve: epsilon out of (0, 0.5)") (fun () ->
      ignore (Max_flow.solve g overlays ~epsilon:0.7))

let test_maxflow_tightening_ratio_improves () =
  let g, sessions = make_env ~seed:4 ~n:40 ~sizes:[| 5; 4 |] ~demand:100.0 in
  let run ratio =
    let overlays = Array.map (Overlay.create g Overlay.Ip) sessions in
    let r = Max_flow.solve g overlays ~epsilon:(Max_flow.ratio_to_epsilon ratio) in
    Solution.overall_throughput r.Max_flow.solution
  in
  let loose = run 0.90 and tight = run 0.98 in
  (* the guarantee improves; empirically the paper observes monotone
     growth. Allow tiny numerical slack. *)
  checkb "tighter ratio not worse" true (tight >= loose *. 0.99)

(* --- MaxConcurrentFlow ------------------------------------------------- *)

let test_mcf_feasible_and_fair () =
  let g, sessions = make_env ~seed:5 ~n:50 ~sizes:[| 7; 5 |] ~demand:100.0 in
  let overlays = Array.map (Overlay.create g Overlay.Ip) sessions in
  let r =
    Max_concurrent_flow.solve g overlays ~epsilon:0.03
      ~scaling:Max_concurrent_flow.Maxflow_weighted
  in
  let s = r.Max_concurrent_flow.solution in
  checkb "feasible" true (Solution.is_feasible s g ~tol:Check.default_tol);
  checkb "both sessions served" true
    (Solution.session_rate s 0 > 0.0 && Solution.session_rate s 1 > 0.0);
  checkb "zetas positive" true
    (Array.for_all (fun z -> z > 0.0) r.Max_concurrent_flow.zetas)

let test_mcf_proportional_serves_demand_ratio () =
  (* with Proportional scaling and equal demands, rates are near-equal
     (each phase routes the same working demand per session) *)
  let g, sessions = make_env ~seed:6 ~n:40 ~sizes:[| 5; 5 |] ~demand:50.0 in
  let overlays = Array.map (Overlay.create g Overlay.Ip) sessions in
  let r =
    Max_concurrent_flow.solve g overlays ~epsilon:0.05
      ~scaling:Max_concurrent_flow.Proportional
  in
  let s = r.Max_concurrent_flow.solution in
  let r0 = Solution.session_rate s 0 and r1 = Solution.session_rate s 1 in
  checkb
    (Printf.sprintf "rates near equal (%.2f vs %.2f)" r0 r1)
    true
    (abs_float (r0 -. r1) <= 0.1 *. Float.max r0 r1)

let test_mcf_min_rate_dominates_single_tree () =
  (* the fractional optimum should be at least as good as the one-tree
     baseline on the min rate *)
  let g, sessions = make_env ~seed:7 ~n:40 ~sizes:[| 6; 4 |] ~demand:10.0 in
  let overlays = Array.map (Overlay.create g Overlay.Ip) sessions in
  let mcf =
    Max_concurrent_flow.solve g overlays ~epsilon:0.05
      ~scaling:Max_concurrent_flow.Proportional
  in
  let baseline_overlays = Array.map (Overlay.create g Overlay.Ip) sessions in
  let single = Baseline.single_tree g baseline_overlays in
  (* compare normalized by demand: the baseline scales to saturation so
     compare the concurrent ratio (min rate / demand) *)
  let mcf_ratio = Solution.concurrent_ratio mcf.Max_concurrent_flow.solution in
  let single_ratio = Solution.concurrent_ratio single.Baseline.solution in
  checkb
    (Printf.sprintf "mcf %.3f >= 0.8 * single-tree %.3f" mcf_ratio single_ratio)
    true
    (mcf_ratio >= 0.8 *. single_ratio)

(* --- Random rounding ------------------------------------------------------ *)

let fractional_for_rounding () =
  let g, sessions = make_env ~seed:8 ~n:50 ~sizes:[| 7; 5 |] ~demand:100.0 in
  let overlays = Array.map (Overlay.create g Overlay.Ip) sessions in
  let r =
    Max_concurrent_flow.solve g overlays ~epsilon:0.03
      ~scaling:Max_concurrent_flow.Maxflow_weighted
  in
  (g, r.Max_concurrent_flow.solution)

let test_rounding_feasible_and_bounded () =
  let g, fractional = fractional_for_rounding () in
  let rng = Rng.create 99 in
  List.iter
    (fun n_trees ->
      let r = Random_rounding.round rng g ~fractional ~trees_per_session:n_trees in
      checkb "feasible" true (Solution.is_feasible r.Random_rounding.solution g ~tol:Check.default_tol);
      Array.iteri
        (fun i d ->
          checkb
            (Printf.sprintf "distinct trees (%d) within budget %d" d n_trees)
            true
            (d <= n_trees && d >= 1);
          ignore i)
        r.Random_rounding.distinct_trees)
    [ 1; 3; 10 ]

let test_rounding_more_trees_helps () =
  let g, fractional = fractional_for_rounding () in
  let rng = Rng.create 100 in
  let _, thr1, _ =
    Random_rounding.round_average rng g ~fractional ~trees_per_session:1 ~repeats:30
  in
  let _, thr20, _ =
    Random_rounding.round_average rng g ~fractional ~trees_per_session:20 ~repeats:30
  in
  checkb
    (Printf.sprintf "20 trees (%.1f) beat 1 tree (%.1f)" thr20 thr1)
    true (thr20 > thr1)

let test_rounding_respects_fractional_support () =
  let g, fractional = fractional_for_rounding () in
  let rng = Rng.create 101 in
  let r = Random_rounding.round rng g ~fractional ~trees_per_session:5 in
  (* every selected tree must exist in the fractional support *)
  let support = Hashtbl.create 64 in
  Array.iteri
    (fun i _ ->
      List.iter
        (fun (t, _) -> Hashtbl.replace support (Otree.key t) ())
        (Solution.trees fractional i))
    (Solution.sessions fractional);
  Array.iteri
    (fun i _ ->
      List.iter
        (fun (t, _) ->
          checkb "tree from support" true (Hashtbl.mem support (Otree.key t)))
        (Solution.trees r.Random_rounding.solution i))
    (Solution.sessions r.Random_rounding.solution)

(* --- Online ------------------------------------------------------------------ *)

let test_online_feasible () =
  let g, sessions = make_env ~seed:9 ~n:50 ~sizes:[| 6; 4 |] ~demand:1.0 in
  let replicas = Session.replicate sessions ~copies:8 ~demand:1.0 in
  let overlays = Array.map (Overlay.create g Overlay.Ip) replicas in
  let r = Online.solve g overlays ~sigma:30.0 in
  checkb "feasible" true (Solution.is_feasible r.Online.solution g ~tol:Check.default_tol);
  checkb "one tree per session" true
    (Array.for_all (fun (_ : Otree.t) -> true) r.Online.trees);
  Array.iteri
    (fun slot _ ->
      checkb "each replica uses exactly one tree" true
        (Solution.n_trees r.Online.solution slot = 1))
    (Solution.sessions r.Online.solution)

let test_online_sigma_sensitivity () =
  (* large sigma spreads trees across links; tiny sigma keeps reusing
     the same shortest tree. Both must stay feasible. *)
  let g, sessions = make_env ~seed:10 ~n:50 ~sizes:[| 6 |] ~demand:1.0 in
  let run sigma =
    let replicas = Session.replicate sessions ~copies:12 ~demand:1.0 in
    let overlays = Array.map (Overlay.create g Overlay.Ip) replicas in
    let r = Online.solve g overlays ~sigma in
    checkb "feasible" true (Solution.is_feasible r.Online.solution g ~tol:Check.default_tol);
    let distinct =
      Metrics.aggregate_replicated_trees r.Online.solution
        ~original_of_slot:(Array.make 12 0) ~originals:1
    in
    distinct.(0)
  in
  let low = run 0.001 and high = run 100.0 in
  checkb
    (Printf.sprintf "larger sigma diversifies (%d vs %d)" low high)
    true (high >= low)

let test_online_congestion_bound () =
  (* Theorem 4: congestion of the unscaled routing is O(OPT log m).
     We check the weaker sanity bound lmax <= k * smax (every session
     routed, each tree can load an edge at most n_e <= |S|-1 times its
     demand/capacity, capacities 100, demand 1). *)
  let g, sessions = make_env ~seed:11 ~n:50 ~sizes:[| 5; 5 |] ~demand:1.0 in
  let replicas = Session.replicate sessions ~copies:10 ~demand:1.0 in
  let overlays = Array.map (Overlay.create g Overlay.Ip) replicas in
  let r = Online.solve g overlays ~sigma:10.0 in
  let k = float_of_int (Array.length replicas) in
  checkb "lmax sane" true (r.Online.lmax <= k *. 5.0 /. 100.0 +. 1e-9)

let test_online_no_bottleneck_factor () =
  let g, sessions = make_env ~seed:12 ~n:30 ~sizes:[| 4; 3 |] ~demand:10.0 in
  let overlays = Array.map (Overlay.create g Overlay.Ip) sessions in
  let f = Online.scale_demands_for_no_bottleneck g overlays in
  (* max demand 10, smax 4, min cap 100, k 2: 100 / (10*4*2*2) = 0.625 *)
  Alcotest.(check (float 1e-9)) "factor" 0.625 f

(* --- Baselines ----------------------------------------------------------------- *)

let test_single_tree_baseline () =
  let g, sessions = make_env ~seed:13 ~n:40 ~sizes:[| 6; 4 |] ~demand:10.0 in
  let overlays = Array.map (Overlay.create g Overlay.Ip) sessions in
  let r = Baseline.single_tree g overlays in
  checkb "feasible" true (Solution.is_feasible r.Baseline.solution g ~tol:Check.default_tol);
  Array.iteri
    (fun i _ -> checkb "one tree" true (Solution.n_trees r.Baseline.solution i = 1))
    sessions

let test_interior_disjoint_baseline () =
  let g, sessions = make_env ~seed:14 ~n:40 ~sizes:[| 6; 4 |] ~demand:10.0 in
  let overlays = Array.map (Overlay.create g Overlay.Ip) sessions in
  let r = Baseline.interior_disjoint g overlays ~trees_per_session:3 in
  checkb "feasible" true (Solution.is_feasible r.Baseline.solution g ~tol:Check.default_tol);
  Array.iteri
    (fun i _ ->
      let n = Solution.n_trees r.Baseline.solution i in
      checkb (Printf.sprintf "3 stars (%d)" n) true (n = 3))
    sessions;
  (* each star tree really is interior-disjoint: the trees are stars by
     construction; verify every tree of session 0 spans *)
  List.iter
    (fun (t, _) ->
      checkb "spans" true
        (Otree.is_spanning t ~n_members:(Session.size sessions.(0))))
    (Solution.trees r.Baseline.solution 0)

let test_multi_tree_beats_single_tree () =
  (* the paper's core claim: multi-tree capacity >= single-tree *)
  let g, sessions = make_env ~seed:15 ~n:50 ~sizes:[| 7; 5 |] ~demand:100.0 in
  let mf_overlays = Array.map (Overlay.create g Overlay.Ip) sessions in
  let mf = Max_flow.solve g mf_overlays ~epsilon:0.05 in
  let bl_overlays = Array.map (Overlay.create g Overlay.Ip) sessions in
  let bl = Baseline.single_tree g bl_overlays in
  let mf_thr = Solution.overall_throughput mf.Max_flow.solution in
  let bl_thr = Solution.overall_throughput bl.Baseline.solution in
  checkb
    (Printf.sprintf "multi-tree %.1f >= single-tree %.1f" mf_thr bl_thr)
    true
    (mf_thr >= bl_thr *. 0.95)

let suite =
  [
    Alcotest.test_case "maxflow = exact LP (enumerated)" `Slow
      test_maxflow_matches_exact_lp;
    Alcotest.test_case "maxflow feasible" `Quick test_maxflow_feasible;
    Alcotest.test_case "maxflow single session" `Quick test_maxflow_single_session;
    Alcotest.test_case "maxflow epsilon validation" `Quick
      test_maxflow_epsilon_validation;
    Alcotest.test_case "maxflow ratio monotone-ish" `Quick
      test_maxflow_tightening_ratio_improves;
    Alcotest.test_case "mcf feasible & fair" `Quick test_mcf_feasible_and_fair;
    Alcotest.test_case "mcf proportional near-equal rates" `Quick
      test_mcf_proportional_serves_demand_ratio;
    Alcotest.test_case "mcf dominates single tree" `Quick
      test_mcf_min_rate_dominates_single_tree;
    Alcotest.test_case "rounding feasible & bounded" `Quick
      test_rounding_feasible_and_bounded;
    Alcotest.test_case "rounding more trees helps" `Quick test_rounding_more_trees_helps;
    Alcotest.test_case "rounding from support" `Quick
      test_rounding_respects_fractional_support;
    Alcotest.test_case "online feasible" `Quick test_online_feasible;
    Alcotest.test_case "online sigma sensitivity" `Quick test_online_sigma_sensitivity;
    Alcotest.test_case "online congestion bound" `Quick test_online_congestion_bound;
    Alcotest.test_case "online no-bottleneck factor" `Quick
      test_online_no_bottleneck_factor;
    Alcotest.test_case "single-tree baseline" `Quick test_single_tree_baseline;
    Alcotest.test_case "interior-disjoint baseline" `Quick
      test_interior_disjoint_baseline;
    Alcotest.test_case "multi-tree beats single tree" `Quick
      test_multi_tree_beats_single_tree;
  ]
