(* Tests for the telemetry layer (lib/obs): registry semantics, ring
   wraparound, span nesting, and the integration contract the solvers
   rely on — a traced MaxFlow run emits the documented event sequence
   and a no-op sink leaves the solver output bit-identical. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf = Alcotest.(check (float 0.0))  (* exact equality *)

(* --- names ------------------------------------------------------------ *)

let test_names () =
  let a = Obs.Name.intern "test_obs.alpha" in
  let b = Obs.Name.intern "test_obs.beta" in
  checkb "distinct strings get distinct ids" true (a <> b);
  checki "interning is idempotent" a (Obs.Name.intern "test_obs.alpha");
  Alcotest.(check string) "round trip" "test_obs.beta" (Obs.Name.to_string b);
  checkb "unknown id raises" true
    (try
       ignore (Obs.Name.to_string max_int);
       false
     with Invalid_argument _ -> true)

(* --- counters, gauges, registry --------------------------------------- *)

let test_counter_registry () =
  let c = Obs.Counter.make ~doc:"test counter" "test_obs.count" in
  let c' = Obs.Counter.make "test_obs.count" in
  checkb "make is idempotent by name (same cell)" true (c == c');
  Obs.Counter.reset c;
  Obs.Counter.incr c;
  Obs.Counter.add c 41;
  checki "incr + add accumulate" 42 (Obs.Counter.value c);
  checki "the alias sees the same tally" 42 (Obs.Counter.value c');
  checkb "negative delta raises" true
    (try
       Obs.Counter.add c (-1);
       false
     with Invalid_argument _ -> true);
  checki "failed add leaves the tally unchanged" 42 (Obs.Counter.value c);
  (match Obs.Registry.find_counter "test_obs.count" with
  | Some found -> checkb "find_counter returns the cell" true (found == c)
  | None -> Alcotest.fail "find_counter missed a registered counter");
  checkb "find_counter does not create" true
    (Obs.Registry.find_counter "test_obs.never_created" = None);
  let listed =
    List.filter (fun (n, _, _) -> n = "test_obs.count") (Obs.Registry.counters ())
  in
  (match listed with
  | [ (_, doc, v) ] ->
    Alcotest.(check string) "doc kept from first make" "test counter" doc;
    checki "registry reads the live value" 42 v
  | _ -> Alcotest.fail "registry listing missing/duplicated the counter");
  let names = List.map (fun (n, _, _) -> n) (Obs.Registry.counters ()) in
  checkb "registry listing is sorted" true (List.sort compare names = names);
  Obs.Counter.reset c;
  checki "reset zeroes" 0 (Obs.Counter.value c)

let test_gauge () =
  let g = Obs.Gauge.make ~doc:"test gauge" "test_obs.gauge" in
  checkb "make is idempotent by name" true (g == Obs.Gauge.make "test_obs.gauge");
  Obs.Gauge.set g 1.5;
  Obs.Gauge.set g 2.5;
  checkf "last write wins" 2.5 (Obs.Gauge.value g);
  checkb "listed in the registry" true
    (List.exists (fun (n, _, v) -> n = "test_obs.gauge" && v = 2.5)
       (Obs.Registry.gauges ()))

let test_debug_flags () =
  let f = Obs.Debug_flags.register ~env:"TEST_OBS_FLAG" ~doc:"test flag"
      "test_obs.flag"
  in
  checkb "register is idempotent" true
    (f == Obs.Debug_flags.register ~env:"TEST_OBS_FLAG" "test_obs.flag");
  checkb "unset env leaves the flag off" false (Obs.Debug_flags.enabled f);
  Obs.Debug_flags.set f true;
  checkb "set flips it" true (Obs.Debug_flags.enabled f);
  Obs.Debug_flags.set f false;
  checkb "listed with env name" true
    (List.exists
       (fun (n, env, _, _) -> n = "test_obs.flag" && env = "TEST_OBS_FLAG")
       (Obs.Debug_flags.all ()));
  (* the overlay cross-check flag moved into this table (was a bare
     getenv): it must be discoverable and wired to Overlay's toggle *)
  checkb "overlay.cross_check is registered" true
    (List.exists (fun (n, _, _, _) -> n = "overlay.cross_check")
       (Obs.Debug_flags.all ()));
  let was = Overlay.cross_check_enabled () in
  Overlay.set_cross_check (not was);
  checkb "Overlay.set_cross_check drives the flag" (not was)
    (Overlay.cross_check_enabled ());
  Overlay.set_cross_check was

(* --- clock and kinds --------------------------------------------------- *)

let test_clock_monotone () =
  let prev = ref (Obs.now ()) in
  for _ = 1 to 1000 do
    let t = Obs.now () in
    if t < !prev then Alcotest.fail "Obs.now went backwards";
    prev := t
  done

let all_kinds =
  [
    Obs.Run_start; Obs.Run_end; Obs.Iter_start; Obs.Iter_end; Obs.Phase_start;
    Obs.Phase_end; Obs.Demand_double; Obs.Rescale; Obs.Mst_recompute;
    Obs.Mst_lazy_skip; Obs.Session_rate; Obs.Span_open; Obs.Span_close;
  ]

let test_kind_names () =
  List.iter
    (fun k ->
      match Obs.kind_of_name (Obs.kind_name k) with
      | Some k' -> checkb ("round trip " ^ Obs.kind_name k) true (k = k')
      | None -> Alcotest.fail ("kind_of_name missed " ^ Obs.kind_name k))
    all_kinds;
  checkb "unknown wire name" true (Obs.kind_of_name "no_such_kind" = None)

(* --- ring buffer -------------------------------------------------------- *)

let test_ring_wraparound () =
  let t = Obs.Trace.create ~capacity:8 () in
  let sink = Obs.Trace.sink t in
  checkb "trace sink is enabled" true (Obs.Sink.enabled sink);
  for i = 0 to 19 do
    Obs.Sink.emit sink Obs.Iter_start ~session:i ~a:(float_of_int i) ~b:0.0
  done;
  checki "capacity" 8 (Obs.Trace.capacity t);
  checki "emitted counts everything" 20 (Obs.Trace.emitted t);
  checki "recorded is bounded by capacity" 8 (Obs.Trace.recorded t);
  checki "dropped = emitted - capacity" 12 (Obs.Trace.dropped t);
  let events = Obs.Trace.events t in
  checki "events returns the retained window" 8 (List.length events);
  List.iteri
    (fun j (e : Obs.Event.t) ->
      checki "seq stays the global emission index" (12 + j) e.Obs.Event.seq;
      checki "payload survived the wrap" (12 + j) e.Obs.Event.session;
      checkf "a payload" (float_of_int (12 + j)) e.Obs.Event.a)
    events;
  let times = List.map (fun (e : Obs.Event.t) -> e.Obs.Event.time) events in
  checkb "timestamps non-decreasing" true
    (List.sort compare times = times);
  Obs.Trace.clear t;
  checki "clear resets emitted" 0 (Obs.Trace.emitted t);
  checki "clear keeps capacity" 8 (Obs.Trace.capacity t);
  checkb "clear empties the window" true (Obs.Trace.events t = []);
  (* the ring keeps recording after a clear *)
  Obs.Sink.emit sink Obs.Rescale ~session:(-1) ~a:1.0 ~b:0.0;
  checki "recording resumes from seq 0" 0
    (match Obs.Trace.events t with
    | [ e ] -> e.Obs.Event.seq
    | _ -> -1)

let test_trace_create_validation () =
  checkb "non-positive capacity raises" true
    (try
       ignore (Obs.Trace.create ~capacity:0 ());
       false
     with Invalid_argument _ -> true)

(* --- spans -------------------------------------------------------------- *)

let test_span_nesting () =
  let t = Obs.Trace.create ~capacity:16 () in
  let sink = Obs.Trace.sink t in
  let outer = Obs.Span.make "test_obs.outer" in
  let inner = Obs.Span.make "test_obs.inner" in
  Alcotest.(check string) "span name round trip" "test_obs.outer"
    (Obs.Span.name outer);
  let v =
    Obs.Span.with_ sink outer (fun () ->
        Obs.Span.with_ sink inner (fun () -> 7))
  in
  checki "with_ returns the body's value" 7 v;
  (match Obs.Trace.events t with
  | [ o1; o2; c2; c1 ] ->
    checkb "outer open" true (o1.Obs.Event.kind = Obs.Span_open);
    checki "outer open names the span" (Obs.Name.intern "test_obs.outer")
      o1.Obs.Event.session;
    checkf "outer opens at depth 0" 0.0 o1.Obs.Event.b;
    checkf "inner opens at depth 1" 1.0 o2.Obs.Event.b;
    checkb "inner closes first" true
      (c2.Obs.Event.kind = Obs.Span_close
      && c2.Obs.Event.session = Obs.Name.intern "test_obs.inner");
    checkf "inner closes back to depth 1" 1.0 c2.Obs.Event.b;
    checkf "outer closes back to depth 0" 0.0 c1.Obs.Event.b;
    checkb "durations are non-negative" true
      (c1.Obs.Event.a >= 0.0 && c2.Obs.Event.a >= 0.0);
    checkb "outer lasted at least as long as inner" true
      (c1.Obs.Event.a >= c2.Obs.Event.a)
  | evs ->
    Alcotest.failf "expected 4 span events, got %d" (List.length evs));
  (* a raising body still closes its span *)
  (try
     Obs.Span.with_ sink outer (fun () -> failwith "boom")
   with Failure _ -> ());
  let closes =
    List.filter
      (fun (e : Obs.Event.t) -> e.Obs.Event.kind = Obs.Span_close)
      (Obs.Trace.events t)
  in
  checki "span closed despite the exception" 3 (List.length closes)

(* --- custom sinks ------------------------------------------------------- *)

let test_custom_sink () =
  let seen = ref [] in
  let sink =
    Obs.Sink.make (fun kind ~session ~a ~b -> seen := (kind, session, a, b) :: !seen)
  in
  checkb "make is enabled" true (Obs.Sink.enabled sink);
  Obs.Sink.emit sink Obs.Rescale ~session:3 ~a:1.0 ~b:2.0;
  checkb "consumer saw the event" true (!seen = [ (Obs.Rescale, 3, 1.0, 2.0) ]);
  checkb "null sink is disabled" false (Obs.Sink.enabled Obs.Sink.null);
  Obs.Sink.emit Obs.Sink.null Obs.Rescale ~session:0 ~a:0.0 ~b:0.0

(* --- integration: MaxFlow emits the documented sequence ------------------ *)

let small_instance () =
  let rng = Rng.create 7 in
  let topo = Waxman.generate rng { Waxman.default_params with Waxman.n = 30 } in
  let g = topo.Topology.graph in
  let mk id size =
    Session.random rng ~id ~topology_size:(Topology.n_nodes topo) ~size
      ~demand:10.0
  in
  (g, [| mk 0 5; mk 1 4 |])

let overlays_of g sessions = Array.map (fun s -> Overlay.create g Overlay.Ip s) sessions

let tree_keys solution slot =
  Solution.trees solution slot
  |> List.map (fun (t, rate) -> (Otree.key t, rate))
  |> List.sort compare

let test_maxflow_trace () =
  let g, sessions = small_instance () in
  let tr = Obs.Trace.create () in
  let r =
    Max_flow.solve ~obs:(Obs.Trace.sink tr) g (overlays_of g sessions)
      ~epsilon:0.05
  in
  checki "nothing dropped on a small run" 0 (Obs.Trace.dropped tr);
  let events = Obs.Trace.events tr in
  checkb "trace is non-empty" true (events <> []);
  let maxflow = Obs.Name.intern "maxflow" in
  (match events with
  | first :: _ ->
    checkb "first event is run_start" true (first.Obs.Event.kind = Obs.Run_start);
    checki "run_start names the solver" maxflow first.Obs.Event.session;
    checkf "run_start carries the session count" 2.0 first.Obs.Event.a;
    checkf "run_start carries epsilon" 0.05 first.Obs.Event.b
  | [] -> Alcotest.fail "empty trace");
  (match List.rev events with
  | last :: _ ->
    checkb "last event is run_end" true (last.Obs.Event.kind = Obs.Run_end);
    checki "run_end names the solver" maxflow last.Obs.Event.session;
    checkf "run_end reports the iteration count"
      (float_of_int r.Max_flow.iterations)
      last.Obs.Event.a
  | [] -> ());
  let count k =
    List.length (List.filter (fun (e : Obs.Event.t) -> e.Obs.Event.kind = k) events)
  in
  checki "one iter_start per iteration" r.Max_flow.iterations
    (count Obs.Iter_start);
  checkb "iter_end matches iter_start (±1 for a degenerate last step)" true
    (let starts = count Obs.Iter_start and ends = count Obs.Iter_end in
     ends = starts || ends = starts - 1);
  checki "one session_rate per slot" 2 (count Obs.Session_rate);
  checki "every MST call traced as recompute or lazy skip"
    r.Max_flow.mst_operations
    (count Obs.Mst_recompute + count Obs.Mst_lazy_skip);
  List.iteri
    (fun j (e : Obs.Event.t) -> checki "seq is contiguous from 0" j e.Obs.Event.seq)
    events;
  let times = List.map (fun (e : Obs.Event.t) -> e.Obs.Event.time) events in
  checkb "timestamps non-decreasing" true (List.sort compare times = times);
  (* per-session rates reported in the trace equal the solution's *)
  List.iter
    (fun (e : Obs.Event.t) ->
      if e.Obs.Event.kind = Obs.Session_rate then
        checkf
          (Printf.sprintf "session_rate slot %d" e.Obs.Event.session)
          (Solution.session_rate r.Max_flow.solution e.Obs.Event.session)
          e.Obs.Event.a)
    events

let test_noop_sink_bit_identical () =
  let g, sessions = small_instance () in
  let tr = Obs.Trace.create () in
  let traced =
    Max_flow.solve ~obs:(Obs.Trace.sink tr) g (overlays_of g sessions)
      ~epsilon:0.05
  in
  let plain = Max_flow.solve g (overlays_of g sessions) ~epsilon:0.05 in
  checki "same iteration count" plain.Max_flow.iterations
    traced.Max_flow.iterations;
  checki "same MST operation count" plain.Max_flow.mst_operations
    traced.Max_flow.mst_operations;
  checkb "bit-identical per-session rates" true
    (Solution.rates plain.Max_flow.solution
    = Solution.rates traced.Max_flow.solution);
  Array.iteri
    (fun slot _ ->
      checkb
        (Printf.sprintf "bit-identical tree multiset, slot %d" slot)
        true
        (tree_keys plain.Max_flow.solution slot
        = tree_keys traced.Max_flow.solution slot))
    sessions

let test_mcf_trace_spans () =
  let g, sessions = small_instance () in
  let tr = Obs.Trace.create () in
  let r =
    Max_concurrent_flow.solve ~obs:(Obs.Trace.sink tr) g
      (overlays_of g sessions) ~epsilon:0.05
      ~scaling:Max_concurrent_flow.Maxflow_weighted
  in
  let events = Obs.Trace.events tr in
  let count k =
    List.length (List.filter (fun (e : Obs.Event.t) -> e.Obs.Event.kind = k) events)
  in
  let span_named name =
    List.exists
      (fun (e : Obs.Event.t) ->
        e.Obs.Event.kind = Obs.Span_open
        && e.Obs.Event.session = Obs.Name.intern name)
      events
  in
  checkb "preprocess span present" true (span_named "mcf.preprocess");
  checkb "main span present" true (span_named "mcf.main");
  checki "spans are balanced" (count Obs.Span_open) (count Obs.Span_close);
  checki "one phase_start per phase" r.Max_concurrent_flow.phases
    (count Obs.Phase_start);
  checki "phases are bracketed" (count Obs.Phase_start) (count Obs.Phase_end);
  (* nested MaxFlow preprocessing emits its own run pairs: 2 sessions
     + the outer mcf run = 3 run_start/run_end pairs *)
  checki "nested runs traced" 3 (count Obs.Run_start);
  checki "run pairs balanced" (count Obs.Run_start) (count Obs.Run_end)

let suite =
  [
    Alcotest.test_case "interned names" `Quick test_names;
    Alcotest.test_case "counter registry semantics" `Quick test_counter_registry;
    Alcotest.test_case "gauge semantics" `Quick test_gauge;
    Alcotest.test_case "debug flags" `Quick test_debug_flags;
    Alcotest.test_case "monotonic clock" `Quick test_clock_monotone;
    Alcotest.test_case "kind wire names" `Quick test_kind_names;
    Alcotest.test_case "ring-buffer wraparound" `Quick test_ring_wraparound;
    Alcotest.test_case "trace validation" `Quick test_trace_create_validation;
    Alcotest.test_case "span nesting" `Quick test_span_nesting;
    Alcotest.test_case "custom sinks" `Quick test_custom_sink;
    Alcotest.test_case "maxflow event sequence" `Quick test_maxflow_trace;
    Alcotest.test_case "no-op sink output bit-identical" `Quick
      test_noop_sink_bit_identical;
    Alcotest.test_case "mcf spans and phases" `Quick test_mcf_trace_spans;
  ]
