(* Fault-injected integration tests for the control-plane daemon, run
   fully in-process: the poll-based server and the raw-byte clients
   interleave deterministically in one thread over a Unix-domain
   socket.  The injections come straight from ISSUE 10: split writes,
   interleaved partial frames from two connections, an oversized
   frame, an unknown tag, garbage, events before the handshake, and a
   mid-session disconnect — the daemon must degrade per contract
   (error reply + closed connection for codec faults, open connection
   for engine-level rejections) and never die.  The wire replay test
   pins the strongest property: a trace replayed over the socket
   leaves the engine in a bit-identical state to Engine.replay. *)

let sock_counter = ref 0

let sock_path () =
  incr sock_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "ovl_test_%d_%d.sock" (Unix.getpid ()) !sock_counter)

let make_graph () =
  let rng = Rng.create 11 in
  let topology = Waxman.generate rng { Waxman.default_params with n = 24 } in
  Graph.copy topology.Topology.graph

let engine_config =
  {
    Engine.default_config with
    Engine.epsilon = Max_flow.ratio_to_epsilon 0.90;
  }

let with_daemon ?(config = Daemon.default_config) f =
  let engine = Engine.create ~config:engine_config (make_graph ()) [||] in
  let path = sock_path () in
  let d = Daemon.create ~config ~engine [ Unix.ADDR_UNIX path ] in
  Fun.protect
    ~finally:(fun () ->
      Daemon.stop d;
      try Sys.remove path with Sys_error _ -> ())
    (fun () -> f d path)

let connect path = Wire_client.connect (Unix.ADDR_UNIX path)

(* in-process handshake: alternate daemon polls with client reads *)
let handshake d c =
  match Daemon.drive d c (Wire.Hello { version = Wire.version }) with
  | Ok (Wire.Hello_ack _) -> ()
  | Ok f -> Alcotest.failf "handshake got %s" (Wire.frame_name f)
  | Error msg -> Alcotest.failf "handshake failed: %s" msg

let connected d path =
  let c = connect path in
  handshake d c;
  c

(* poll the daemon until the client yields a frame or EOF *)
let await d c =
  let deadline = Unix.gettimeofday () +. 5.0 in
  let rec go () =
    match Wire_client.try_recv c with
    | `Frame f -> `Frame f
    | `Closed -> `Closed
    | `Error msg -> Alcotest.failf "client decode failed: %s" msg
    | `Pending ->
      if Unix.gettimeofday () > deadline then Alcotest.fail "await: timeout"
      else begin
        ignore (Daemon.poll ~timeout:0.01 d);
        go ()
      end
  in
  go ()

let await_frame d c =
  match await d c with
  | `Frame f -> f
  | `Closed -> Alcotest.fail "connection closed while awaiting a frame"

(* returns the report's active-session count [k] *)
let expect_report d c =
  match await_frame d c with
  | Wire.Solve_report { certified; k; _ } ->
    Alcotest.(check bool) "report certified" true certified;
    k
  | f -> Alcotest.failf "expected solve_report, got %s" (Wire.frame_name f)

let expect_error d c code =
  match await_frame d c with
  | Wire.Error e ->
    Alcotest.(check string) "error code" (Wire.error_code_name code)
      (Wire.error_code_name e.code)
  | f -> Alcotest.failf "expected error frame, got %s" (Wire.frame_name f)

let expect_closed d c =
  match await d c with
  | `Closed -> ()
  | `Frame f -> Alcotest.failf "expected EOF, got %s" (Wire.frame_name f)

let join ~at ~id ~members ~demand =
  { Churn.at; event = Churn.Session_join { id; members; demand } }

let leave ~at ~id = { Churn.at; event = Churn.Session_leave { id } }

(* a daemon that survived an injection must still serve a fresh client *)
let assert_alive d path =
  let c = connected d path in
  let r =
    Daemon.drive d c
      (Wire_event.to_frame
         (join ~at:99.0 ~id:9000 ~members:[| 0; 1; 2 |] ~demand:10.0))
  in
  (match r with
  | Ok (Wire.Solve_report _) -> ()
  | Ok f -> Alcotest.failf "alive-check got %s" (Wire.frame_name f)
  | Error msg -> Alcotest.failf "alive-check failed: %s" msg);
  (match
     Daemon.drive d c (Wire_event.to_frame (leave ~at:99.5 ~id:9000))
   with
  | Ok (Wire.Solve_report _) -> ()
  | _ -> Alcotest.fail "alive-check leave failed");
  Wire_client.close c

(* --- the headline property: wire replay == in-process replay ---------- *)

let test_wire_replay_matches_inprocess () =
  let trace =
    let g = make_graph () in
    let rng = Rng.create 8 in
    let base =
      Churn.poisson_trace rng g
        {
          Churn.default_config with
          Churn.arrival_rate = 1.5;
          mean_holding_time = 4.0;
          size_min = 3;
          size_max = 5;
          horizon = 6.0;
          demand = 50.0;
        }
        ~first_id:1
    in
    Churn.with_perturbations (Rng.create 9) g ~p_demand:0.2 ~p_capacity:0.1
      base
  in
  Alcotest.(check bool) "trace is non-trivial" true (List.length trace >= 8);
  (* in-process reference *)
  let ref_engine = Engine.create ~config:engine_config (make_graph ()) [||] in
  let ref_reports = Engine.replay ref_engine trace in
  (* the same trace over the wire *)
  with_daemon (fun d path ->
      let c = connected d path in
      List.iter2
        (fun te (r : Engine.report) ->
          match Daemon.drive d c (Wire_event.to_frame te) with
          | Ok (Wire.Solve_report { certified; k; warm; objective; _ }) ->
            Alcotest.(check bool) "event certified over the wire" true
              certified;
            Alcotest.(check int) "active sessions agree" r.Engine.k k;
            Alcotest.(check bool) "warm/cold split agrees" r.Engine.warm warm;
            (* the hard gate: bit-identical objective per event *)
            if
              Int64.bits_of_float r.Engine.objective
              <> Int64.bits_of_float objective
            then
              Alcotest.failf "objective diverged over the wire: %.17g vs %.17g"
                r.Engine.objective objective
          | Ok f ->
            Alcotest.failf "event %s got %s"
              (Churn.event_to_string te.Churn.event)
              (Wire.frame_name f)
          | Error msg ->
            Alcotest.failf "event %s failed: %s"
              (Churn.event_to_string te.Churn.event)
              msg)
        trace ref_reports;
      Wire_client.close c;
      Alcotest.(check int) "final session count agrees"
        (Engine.n_sessions ref_engine)
        (Engine.n_sessions (Daemon.engine d));
      if
        Int64.bits_of_float (Engine.objective ref_engine)
        <> Int64.bits_of_float (Engine.objective (Daemon.engine d))
      then Alcotest.fail "final objective diverged over the wire";
      Alcotest.(check int) "sequence numbers cover the trace"
        (List.length trace) (Daemon.seq d))

(* --- fault injections -------------------------------------------------- *)

let test_split_writes () =
  with_daemon (fun d path ->
      let c = connected d path in
      let frame =
        Wire_event.to_frame
          (join ~at:1.0 ~id:1 ~members:[| 0; 3; 7 |] ~demand:25.0)
      in
      let buf = Wire.encode frame in
      (* byte-at-a-time, with server polls between every byte *)
      for i = 0 to Bytes.length buf - 1 do
        Wire_client.send_bytes c buf ~pos:i ~len:1;
        ignore (Daemon.poll ~timeout:0.001 d)
      done;
      ignore (expect_report d c);
      (* again in two uneven chunks spanning the header boundary *)
      let buf2 = Wire.encode (Wire_event.to_frame (leave ~at:2.0 ~id:1)) in
      Wire_client.send_bytes c buf2 ~pos:0 ~len:3;
      ignore (Daemon.poll ~timeout:0.01 d);
      Wire_client.send_bytes c buf2 ~pos:3 ~len:(Bytes.length buf2 - 3);
      ignore (expect_report d c);
      Wire_client.close c;
      Alcotest.(check int) "both events applied" 2
        (Daemon.stats d).Daemon.events_applied)

let test_interleaved_partial_frames () =
  with_daemon (fun d path ->
      let ca = connected d path in
      let cb = connected d path in
      let fa =
        Wire.encode
          (Wire_event.to_frame
             (join ~at:1.0 ~id:1 ~members:[| 0; 2; 4 |] ~demand:20.0))
      in
      let fb =
        Wire.encode
          (Wire_event.to_frame
             (join ~at:1.5 ~id:2 ~members:[| 1; 3; 5 |] ~demand:30.0))
      in
      (* A sends half a frame and stalls; B's complete frame must not
         be blocked or polluted by A's partial buffer *)
      Wire_client.send_bytes ca fa ~pos:0 ~len:(Bytes.length fa / 2);
      ignore (Daemon.poll ~timeout:0.01 d);
      Wire_client.send_bytes cb fb ~pos:0 ~len:(Bytes.length fb);
      Alcotest.(check int) "B joined first" 1 (expect_report d cb);
      (* now A completes; its join lands second *)
      Wire_client.send_bytes ca fa ~pos:(Bytes.length fa / 2)
        ~len:(Bytes.length fa - (Bytes.length fa / 2));
      Alcotest.(check int) "A joined second" 2 (expect_report d ca);
      Wire_client.close ca;
      Wire_client.close cb)

let test_oversized_frame () =
  let config =
    {
      Daemon.default_config with
      Daemon.limits = { Wire.default_limits with Wire.max_frame = 128 };
    }
  in
  with_daemon ~config (fun d path ->
      let c = connected d path in
      let buf = Bytes.create 4 in
      Bytes.set_int32_be buf 0 1000l;
      Wire_client.send_bytes c buf ~pos:0 ~len:4;
      expect_error d c Wire.Limit_exceeded;
      expect_closed d c;
      Wire_client.close c;
      assert_alive d path)

let test_unknown_tag () =
  with_daemon (fun d path ->
      let c = connected d path in
      let buf = Bytes.create 5 in
      Bytes.set_int32_be buf 0 1l;
      Bytes.set_uint8 buf 4 0x7E;
      Wire_client.send_bytes c buf ~pos:0 ~len:5;
      expect_error d c Wire.Unknown_tag;
      expect_closed d c;
      Wire_client.close c;
      assert_alive d path)

let test_garbage_bytes () =
  with_daemon (fun d path ->
      let c = connect path in
      let buf = Bytes.init 64 (fun i -> Char.chr ((i * 37 + 101) land 0xFF)) in
      Wire_client.send_bytes c buf ~pos:0 ~len:64;
      (match await_frame d c with
      | Wire.Error _ -> ()
      | f -> Alcotest.failf "garbage earned %s" (Wire.frame_name f));
      expect_closed d c;
      Wire_client.close c;
      assert_alive d path)

let test_event_before_hello () =
  with_daemon (fun d path ->
      let c = connect path in
      Wire_client.send c
        (Wire_event.to_frame
           (join ~at:1.0 ~id:1 ~members:[| 0; 1; 2 |] ~demand:10.0));
      expect_error d c Wire.Not_ready;
      expect_closed d c;
      Wire_client.close c;
      Alcotest.(check int) "nothing applied" 0
        (Daemon.stats d).Daemon.events_applied;
      assert_alive d path)

let test_wrong_version_hello () =
  with_daemon (fun d path ->
      let c = connect path in
      Wire_client.send c (Wire.Hello { version = 2 });
      expect_error d c Wire.Unsupported_version;
      expect_closed d c;
      Wire_client.close c;
      assert_alive d path)

let test_bad_event_keeps_connection () =
  with_daemon (fun d path ->
      let c = connected d path in
      let j = join ~at:1.0 ~id:1 ~members:[| 0; 1; 2 |] ~demand:10.0 in
      (match Daemon.drive d c (Wire_event.to_frame j) with
      | Ok (Wire.Solve_report _) -> ()
      | _ -> Alcotest.fail "first join failed");
      (* duplicate id: engine-level rejection, connection survives *)
      (match Daemon.drive d c (Wire_event.to_frame j) with
      | Ok (Wire.Error e) ->
        Alcotest.(check string) "bad_event" "bad_event"
          (Wire.error_code_name e.code)
      | Ok f -> Alcotest.failf "duplicate join got %s" (Wire.frame_name f)
      | Error msg -> Alcotest.failf "duplicate join: %s" msg);
      (* unknown id on leave: same *)
      (match Daemon.drive d c (Wire_event.to_frame (leave ~at:2.0 ~id:42)) with
      | Ok (Wire.Error _) -> ()
      | _ -> Alcotest.fail "unknown leave must be rejected");
      (* the connection is still good for a valid event *)
      (match Daemon.drive d c (Wire_event.to_frame (leave ~at:3.0 ~id:1)) with
      | Ok (Wire.Solve_report _) -> ()
      | _ -> Alcotest.fail "connection did not survive the rejections");
      Wire_client.close c)

let test_session_limit () =
  let config =
    {
      Daemon.default_config with
      Daemon.limits = { Wire.default_limits with Wire.max_sessions = 2 };
    }
  in
  with_daemon ~config (fun d path ->
      let c = connected d path in
      let try_join id =
        Daemon.drive d c
          (Wire_event.to_frame
             (join ~at:(float_of_int id) ~id
                ~members:[| id mod 8; (id + 3) mod 8; (id + 6) mod 8 |]
                ~demand:10.0))
      in
      (match try_join 1 with Ok (Wire.Solve_report _) -> () | _ -> Alcotest.fail "join 1");
      (match try_join 2 with Ok (Wire.Solve_report _) -> () | _ -> Alcotest.fail "join 2");
      (match try_join 3 with
      | Ok (Wire.Error e) ->
        Alcotest.(check string) "limit_exceeded" "limit_exceeded"
          (Wire.error_code_name e.code)
      | _ -> Alcotest.fail "join 3 must hit the session limit");
      (* a leave frees a slot on the same, still-open connection *)
      (match Daemon.drive d c (Wire_event.to_frame (leave ~at:4.0 ~id:1)) with
      | Ok (Wire.Solve_report _) -> ()
      | _ -> Alcotest.fail "leave after limit");
      (match try_join 3 with
      | Ok (Wire.Solve_report _) -> ()
      | _ -> Alcotest.fail "join 3 after a leave");
      Wire_client.close c)

let test_mid_session_disconnect () =
  with_daemon (fun d path ->
      let c = connected d path in
      (match
         Daemon.drive d c
           (Wire_event.to_frame
              (join ~at:1.0 ~id:1 ~members:[| 0; 1; 2 |] ~demand:10.0))
       with
      | Ok (Wire.Solve_report _) -> ()
      | _ -> Alcotest.fail "join failed");
      (* vanish with half a frame in the daemon's read buffer *)
      let next =
        Wire.encode
          (Wire_event.to_frame
             (join ~at:2.0 ~id:2 ~members:[| 3; 4; 5 |] ~demand:10.0))
      in
      Wire_client.send_bytes c next ~pos:0 ~len:5;
      ignore (Daemon.poll ~timeout:0.01 d);
      Wire_client.close c;
      let deadline = Unix.gettimeofday () +. 5.0 in
      while
        (Daemon.stats d).Daemon.closed < 1
        && Unix.gettimeofday () < deadline
      do
        ignore (Daemon.poll ~timeout:0.01 d)
      done;
      Alcotest.(check int) "daemon reaped the connection" 1
        (Daemon.stats d).Daemon.closed;
      (* session 1 survives its owner; the partial join for 2 is gone *)
      Alcotest.(check int) "state kept" 1 (Engine.n_sessions (Daemon.engine d));
      let c2 = connected d path in
      (match Daemon.drive d c2 (Wire_event.to_frame (leave ~at:3.0 ~id:1)) with
      | Ok (Wire.Solve_report _) -> ()
      | _ -> Alcotest.fail "another client could not act on the session");
      Wire_client.close c2)

let test_metrics_pull () =
  with_daemon (fun d path ->
      let c = connected d path in
      (match
         Daemon.drive d c
           (Wire_event.to_frame
              (join ~at:1.0 ~id:1 ~members:[| 0; 1; 2 |] ~demand:10.0))
       with
      | Ok (Wire.Solve_report _) -> ()
      | _ -> Alcotest.fail "join failed");
      (match Daemon.drive d c (Wire.Metrics_pull { format = Wire.Prometheus }) with
      | Ok (Wire.Metrics_reply { format = Wire.Prometheus; body }) -> (
        Alcotest.(check bool) "exposition non-empty" true
          (String.length body > 0);
        match Metrics_export.validate body with
        | Ok () -> ()
        | Error msg -> Alcotest.failf "pulled exposition invalid: %s" msg)
      | Ok f -> Alcotest.failf "metrics pull got %s" (Wire.frame_name f)
      | Error msg -> Alcotest.failf "metrics pull: %s" msg);
      (match Daemon.drive d c (Wire.Metrics_pull { format = Wire.Json }) with
      | Ok (Wire.Metrics_reply { format = Wire.Json; body }) ->
        Alcotest.(check bool) "json object" true
          (String.length body > 0 && body.[0] = '{')
      | _ -> Alcotest.fail "json metrics pull failed");
      Wire_client.close c)

let test_shutdown_frame_and_drain () =
  with_daemon (fun d path ->
      (* shutdown frame: echoed, that connection closes, daemon lives *)
      let c = connected d path in
      (match Daemon.drive d c Wire.Shutdown with
      | Ok Wire.Shutdown -> ()
      | Ok f -> Alcotest.failf "shutdown echo got %s" (Wire.frame_name f)
      | Error msg -> Alcotest.failf "shutdown echo: %s" msg);
      expect_closed d c;
      Wire_client.close c;
      assert_alive d path;
      (* daemon-wide drain: connected clients get a shutdown echo and
         EOF, and the loop reports finished *)
      let c2 = connected d path in
      Daemon.request_shutdown d;
      (match await_frame d c2 with
      | Wire.Shutdown -> ()
      | f -> Alcotest.failf "drain sent %s" (Wire.frame_name f));
      expect_closed d c2;
      Wire_client.close c2;
      let deadline = Unix.gettimeofday () +. 5.0 in
      while (not (Daemon.finished d)) && Unix.gettimeofday () < deadline do
        ignore (Daemon.poll ~timeout:0.01 d)
      done;
      Alcotest.(check bool) "drain finished" true (Daemon.finished d);
      (* the socket no longer accepts *)
      match connect path with
      | c3 ->
        (* connect may succeed at the OS level only if the path was
           rebound; any traffic must fail *)
        Wire_client.close c3;
        Alcotest.fail "drained daemon still accepting"
      | exception Unix.Unix_error _ -> ())

let test_connection_limit () =
  let config = { Daemon.default_config with Daemon.max_connections = 1 } in
  with_daemon ~config (fun d path ->
      let c1 = connected d path in
      let c2 = connect path in
      (* the refusal is written synchronously at accept time *)
      ignore (Daemon.poll ~timeout:0.01 d);
      (match await_frame d c2 with
      | Wire.Error e ->
        Alcotest.(check string) "refused" "limit_exceeded"
          (Wire.error_code_name e.code)
      | f -> Alcotest.failf "over-limit connect got %s" (Wire.frame_name f));
      expect_closed d c2;
      Wire_client.close c2;
      (* the first connection is unaffected *)
      (match
         Daemon.drive d c1
           (Wire_event.to_frame
              (join ~at:1.0 ~id:1 ~members:[| 0; 1; 2 |] ~demand:10.0))
       with
      | Ok (Wire.Solve_report _) -> ()
      | _ -> Alcotest.fail "first connection broken by the refusal");
      Wire_client.close c1)

let suite =
  [
    Alcotest.test_case "wire replay bit-identical to in-process replay" `Slow
      test_wire_replay_matches_inprocess;
    Alcotest.test_case "split writes reassemble" `Quick test_split_writes;
    Alcotest.test_case "interleaved partial frames stay per-connection" `Quick
      test_interleaved_partial_frames;
    Alcotest.test_case "oversized frame refused, daemon survives" `Quick
      test_oversized_frame;
    Alcotest.test_case "unknown tag refused, daemon survives" `Quick
      test_unknown_tag;
    Alcotest.test_case "garbage refused, daemon survives" `Quick
      test_garbage_bytes;
    Alcotest.test_case "event before hello refused" `Quick
      test_event_before_hello;
    Alcotest.test_case "wrong protocol version refused" `Quick
      test_wrong_version_hello;
    Alcotest.test_case "engine rejection keeps the connection" `Quick
      test_bad_event_keeps_connection;
    Alcotest.test_case "session limit enforced per join" `Quick
      test_session_limit;
    Alcotest.test_case "mid-session disconnect leaves state intact" `Quick
      test_mid_session_disconnect;
    Alcotest.test_case "metrics pull over the wire validates" `Quick
      test_metrics_pull;
    Alcotest.test_case "shutdown echo and SIGTERM-style drain" `Quick
      test_shutdown_frame_and_drain;
    Alcotest.test_case "connection limit refuses politely" `Quick
      test_connection_limit;
  ]
