(* Tests for the extension modules: Gomory_hu, Bounds,
   Unsplittable_exact, the Fleischer MCF variant, Transit_stub,
   randomized IP tie-breaking, and the churn simulator. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-6))

(* --- Gomory-Hu ---------------------------------------------------------- *)

let brute_min_cut g u v =
  let net, _ = Maxflow.of_graph g in
  Maxflow.max_flow net ~source:u ~sink:v

let test_gomory_hu_path () =
  let g = Graph.of_edges ~n:4 [ (0, 1, 5.0); (1, 2, 2.0); (2, 3, 7.0) ] in
  let t = Gomory_hu.build g in
  checkf "adjacent" 5.0 (Gomory_hu.min_cut_value t 0 1);
  checkf "across weak edge" 2.0 (Gomory_hu.min_cut_value t 0 3);
  checkf "strong pair" 2.0 (Gomory_hu.min_cut_value t 1 3)

let test_gomory_hu_members () =
  let g = Graph.of_edges ~n:4 [ (0, 1, 5.0); (1, 2, 2.0); (2, 3, 7.0) ] in
  let t = Gomory_hu.build g in
  checkf "weakest pair bound" 2.0 (Gomory_hu.min_cut_over_members t [| 0; 1; 3 |]);
  checkf "strong subset" 5.0 (Gomory_hu.min_cut_over_members t [| 0; 1 |])

let test_gomory_hu_disconnected () =
  let g = Graph.of_edges ~n:3 [ (0, 1, 1.0) ] in
  Alcotest.check_raises "disconnected" (Failure "Gomory_hu.build: disconnected")
    (fun () -> ignore (Gomory_hu.build g))

let random_connected_graph =
  let gen =
    QCheck.Gen.(
      int_range 2 9 >>= fun n ->
      int_range 0 (2 * n) >>= fun extra ->
      let tree_edges =
        List.init (n - 1) (fun i ->
            map (fun j -> (i + 1, j mod (i + 1))) (int_range 0 i))
      in
      flatten_l tree_edges >>= fun tree ->
      list_repeat extra (pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))
      >>= fun more ->
      let all = tree @ List.filter (fun (a, b) -> a <> b) more in
      list_repeat (List.length all) (float_range 0.5 9.0) >>= fun ws ->
      return (n, List.map2 (fun (a, b) w -> (a, b, w)) all ws))
  in
  QCheck.make gen

let qcheck_gomory_hu_all_pairs =
  QCheck.Test.make ~name:"gomory-hu agrees with per-pair max-flow" ~count:60
    random_connected_graph
    (fun (n, edges) ->
      let g = Graph.of_edges ~n edges in
      let t = Gomory_hu.build g in
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = u + 1 to n - 1 do
          let tree_cut = Gomory_hu.min_cut_value t u v in
          let flow = brute_min_cut g u v in
          if abs_float (tree_cut -. flow) > 1e-6 then ok := false
        done
      done;
      !ok)

(* --- Bounds ---------------------------------------------------------------- *)

let env seed =
  let rng = Rng.create seed in
  let topo = Waxman.generate rng { Waxman.default_params with n = 40 } in
  (rng, topo.Topology.graph)

let test_bounds_simple () =
  (* path 0 -5- 1 -2- 2: session {0,2} bounded by cut 2 *)
  let g = Graph.of_edges ~n:3 [ (0, 1, 5.0); (1, 2, 2.0) ] in
  let s = Session.create ~id:0 ~members:[| 0; 2 |] ~demand:1.0 in
  checkf "degree bound" 2.0 (Bounds.member_degree_bound g s);
  checkf "cut bound" 2.0 (Bounds.pairwise_cut_bound g s);
  checkf "combined" 2.0 (Bounds.session_rate_upper_bound g s)

let test_bounds_hold_for_maxflow () =
  let rng, g = env 31 in
  let sessions =
    Array.init 2 (fun id ->
        Session.random rng ~id ~topology_size:40 ~size:5 ~demand:100.0)
  in
  let overlays = Array.map (Overlay.create g Overlay.Ip) sessions in
  let r = Max_flow.solve g overlays ~epsilon:0.05 in
  Alcotest.(check (list int)) "no violations" []
    (Bounds.check_solution g r.Max_flow.solution);
  checkb "throughput under capacity ceiling" true
    (Solution.overall_throughput r.Max_flow.solution
    <= Bounds.total_capacity_bound g r.Max_flow.solution)

let test_bounds_detect_violation () =
  let g = Graph.of_edges ~n:3 [ (0, 1, 5.0); (1, 2, 2.0) ] in
  let s = Session.create ~id:0 ~members:[| 0; 2 |] ~demand:1.0 in
  let sol = Solution.create [| s |] in
  let tree =
    Otree.build ~session_id:0 ~pairs:[| (0, 1) |]
      ~routes:[| Route.make ~src:0 ~dst:2 [| 0; 1 |] |]
  in
  Solution.add sol tree 10.0 (* way over the cut bound of 2 *);
  Alcotest.(check (list int)) "violation flagged" [ 0 ] (Bounds.check_solution g sol)

(* --- Unsplittable_exact ------------------------------------------------------ *)

let test_unsplittable_simple () =
  (* two 2-member sessions sharing one bottleneck edge *)
  let g = Graph.of_edges ~n:4 [ (0, 1, 10.0); (1, 2, 4.0); (2, 3, 10.0) ] in
  let s0 = Session.create ~id:0 ~members:[| 0; 3 |] ~demand:1.0 in
  let s1 = Session.create ~id:1 ~members:[| 1; 2 |] ~demand:1.0 in
  let overlays = Array.map (Overlay.create g Overlay.Ip) [| s0; s1 |] in
  let r = Unsplittable_exact.solve g overlays in
  (* both sessions must cross edge 1 (cap 4); each has exactly one tree,
     loads 1+1 = 2 on edge 1 -> congestion 1/2 -> f = 2 *)
  checkf "objective" 2.0 r.Unsplittable_exact.objective;
  checki "explored both" 1 r.Unsplittable_exact.combinations

let test_unsplittable_dominates_online () =
  let rng, g = env 32 in
  let sessions =
    Array.init 2 (fun id ->
        Session.random rng ~id ~topology_size:40 ~size:4 ~demand:1.0)
  in
  let overlays = Array.map (Overlay.create g Overlay.Ip) sessions in
  let exact = Unsplittable_exact.solve g overlays in
  let online_overlays = Array.map (Overlay.create g Overlay.Ip) sessions in
  let online = Online.solve g online_overlays ~sigma:30.0 in
  let online_f = Solution.concurrent_ratio online.Online.solution in
  checkb
    (Printf.sprintf "exact %.3f >= online %.3f" exact.Unsplittable_exact.objective
       online_f)
    true
    (exact.Unsplittable_exact.objective >= online_f -. 1e-9)

let test_unsplittable_guard () =
  let rng, g = env 33 in
  let sessions =
    Array.init 3 (fun id ->
        Session.random rng ~id ~topology_size:40 ~size:7 ~demand:1.0)
  in
  let overlays = Array.map (Overlay.create g Overlay.Ip) sessions in
  checkb "guard trips" true
    (try
       ignore (Unsplittable_exact.solve ~max_combinations:1000 g overlays);
       false
     with Invalid_argument _ -> true)

(* --- Fleischer variant -------------------------------------------------------- *)

let test_fleischer_matches_paper_variant () =
  let rng, g = env 34 in
  let sessions =
    Array.init 2 (fun id ->
        Session.random rng ~id ~topology_size:40 ~size:5 ~demand:10.0)
  in
  let run variant =
    let overlays = Array.map (Overlay.create g Overlay.Ip) sessions in
    Max_concurrent_flow.solve ~variant g overlays ~epsilon:0.03
      ~scaling:Max_concurrent_flow.Proportional
  in
  let paper = run Max_concurrent_flow.Paper in
  let fleischer = run Max_concurrent_flow.Fleischer in
  let fp = Solution.concurrent_ratio paper.Max_concurrent_flow.solution in
  let ff = Solution.concurrent_ratio fleischer.Max_concurrent_flow.solution in
  checkb "feasible" true
    (Solution.is_feasible fleischer.Max_concurrent_flow.solution g ~tol:Check.default_tol);
  checkb
    (Printf.sprintf "objectives close (%.4f vs %.4f)" fp ff)
    true
    (abs_float (fp -. ff) <= 0.05 *. Float.max fp ff);
  checkb
    (Printf.sprintf "fewer MST ops (%d vs %d)"
       fleischer.Max_concurrent_flow.main_mst_operations
       paper.Max_concurrent_flow.main_mst_operations)
    true
    (fleischer.Max_concurrent_flow.main_mst_operations
    <= paper.Max_concurrent_flow.main_mst_operations)

(* --- Transit_stub --------------------------------------------------------------- *)

let test_transit_stub_shape () =
  let rng = Rng.create 35 in
  let p = Transit_stub.default_params in
  let t = Transit_stub.generate rng p in
  let expected =
    p.Transit_stub.transit_nodes
    + p.Transit_stub.transit_nodes * p.Transit_stub.stubs_per_transit
      * p.Transit_stub.stub_size
  in
  checki "node count" expected (Topology.n_nodes t);
  checkb "connected" true (Topology.check t = None);
  (* backbone routers are marked *)
  for v = 0 to p.Transit_stub.transit_nodes - 1 do
    checkb "backbone flagged" true t.Topology.nodes.(v).Topology.is_border
  done;
  (* stub domains get distinct as ids *)
  checkb "stub as ids assigned" true
    (t.Topology.nodes.(expected - 1).Topology.as_id > 0)

let test_transit_stub_funnels_traffic () =
  (* cross-stub routes must pass through the backbone *)
  let rng = Rng.create 36 in
  let p = { Transit_stub.default_params with transit_nodes = 4; stubs_per_transit = 2 } in
  let t = Transit_stub.generate rng p in
  let g = t.Topology.graph in
  let n = Topology.n_nodes t in
  (* pick one router from the first and last stub *)
  let a = p.Transit_stub.transit_nodes (* first stub router *) in
  let b = n - 1 in
  let table = Ip_routing.compute g ~members:[| a; b |] in
  let route = Ip_routing.route table a b in
  let touches_backbone = ref false in
  Route.iter_edges route (fun id ->
      let u, v = Graph.endpoints g id in
      if u < p.Transit_stub.transit_nodes || v < p.Transit_stub.transit_nodes then
        touches_backbone := true);
  checkb "route crosses backbone" true
    (!touches_backbone || t.Topology.nodes.(a).Topology.as_id = t.Topology.nodes.(b).Topology.as_id)

(* --- randomized IP tie-breaking ---------------------------------------------------- *)

let test_randomized_routes_still_shortest () =
  let _, g = env 37 in
  let rng = Rng.create 38 in
  let members = Rng.sample_without_replacement rng ~n:40 ~k:6 in
  let table = Ip_routing.compute_randomized g (Rng.create 99) ~members in
  Array.iter
    (fun u ->
      Array.iter
        (fun v ->
          if u <> v then begin
            let r = Ip_routing.route table u v in
            checkb "valid" true (Route.is_valid g r);
            let d = Traverse.bfs g ~source:u in
            checki "hop-shortest despite jitter" d.(v) (Route.hops r)
          end)
        members)
    members

let test_randomized_seed_changes_ties () =
  (* a 4-cycle has two equal-hop routes between opposite corners; over
     several seeds both should appear *)
  let g =
    Graph.of_edges ~n:4 [ (0, 1, 1.0); (1, 2, 1.0); (2, 3, 1.0); (3, 0, 1.0) ]
  in
  let seen = Hashtbl.create 2 in
  for seed = 0 to 19 do
    let table = Ip_routing.compute_randomized g (Rng.create seed) ~members:[| 0; 2 |] in
    let r = Ip_routing.route table 0 2 in
    Hashtbl.replace seen r.Route.edges ()
  done;
  checkb "both tie-broken routes occur" true (Hashtbl.length seen >= 2)

(* --- Churn --------------------------------------------------------------------------- *)

let churn_graph () =
  let rng = Rng.create 40 in
  (Waxman.generate rng { Waxman.default_params with n = 40 }).Topology.graph

let test_churn_trace_sane () =
  let g = churn_graph () in
  let r = Churn.run (Rng.create 41) g Churn.default_config in
  checkb "nonempty trace" true (List.length r.Churn.trace > 10);
  let last_time = ref 0.0 in
  List.iter
    (fun s ->
      checkb "time monotone" true (s.Churn.time >= !last_time -. 1e-9);
      last_time := s.Churn.time;
      checkb "counts consistent" true
        (s.Churn.active_sessions <= s.Churn.accepted);
      checkb "rates nonnegative" true (s.Churn.min_rate >= 0.0))
    r.Churn.trace

let test_churn_load_released () =
  (* a short burst followed by a long drain: final congestion ~ 0 *)
  let g = churn_graph () in
  let config =
    { Churn.default_config with Churn.horizon = 200.0; arrival_rate = 0.2;
      mean_holding_time = 2.0 }
  in
  let r = Churn.run (Rng.create 42) g config in
  (match List.rev r.Churn.trace with
   | last :: _ ->
     checkb "few actives at the end" true (last.Churn.active_sessions <= 3)
   | [] -> Alcotest.fail "empty trace");
  (* all sessions that departed released their exact load: congestion of
     the final state only reflects still-active sessions *)
  let residual = Array.fold_left ( +. ) 0.0 r.Churn.final_congestion in
  checkb "residual bounded" true (residual >= 0.0)

let test_churn_determinism () =
  let g = churn_graph () in
  let a = Churn.run (Rng.create 43) g Churn.default_config in
  let b = Churn.run (Rng.create 43) g Churn.default_config in
  checki "same event count" (List.length a.Churn.trace) (List.length b.Churn.trace);
  List.iter2
    (fun (x : Churn.snapshot) (y : Churn.snapshot) ->
      checkf "same times" x.Churn.time y.Churn.time;
      checki "same actives" x.Churn.active_sessions y.Churn.active_sessions)
    a.Churn.trace b.Churn.trace

let test_churn_admission_control () =
  let g = churn_graph () in
  let open_door =
    Churn.run (Rng.create 44) g
      { Churn.default_config with Churn.arrival_rate = 3.0; horizon = 30.0 }
  in
  let strict =
    Churn.run (Rng.create 44) g
      { Churn.default_config with Churn.arrival_rate = 3.0; horizon = 30.0;
        admission_threshold = 0.02 }
  in
  let rejected trace =
    match List.rev trace with [] -> 0 | last :: _ -> last.Churn.rejected
  in
  checki "open door rejects none" 0 (rejected open_door.Churn.trace);
  checkb "strict door rejects some" true (rejected strict.Churn.trace > 0);
  (* admission keeps congestion at or under the threshold-ish region *)
  List.iter
    (fun s ->
      checkb "congestion capped" true (s.Churn.max_congestion <= 0.02 +. 0.05))
    strict.Churn.trace

let test_churn_validation () =
  let g = churn_graph () in
  checkb "bad size rejected" true
    (try
       ignore
         (Churn.run (Rng.create 1) g { Churn.default_config with Churn.size_min = 1 });
       false
     with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "gomory-hu path" `Quick test_gomory_hu_path;
    Alcotest.test_case "gomory-hu members" `Quick test_gomory_hu_members;
    Alcotest.test_case "gomory-hu disconnected" `Quick test_gomory_hu_disconnected;
    QCheck_alcotest.to_alcotest qcheck_gomory_hu_all_pairs;
    Alcotest.test_case "bounds simple" `Quick test_bounds_simple;
    Alcotest.test_case "bounds hold for maxflow" `Quick test_bounds_hold_for_maxflow;
    Alcotest.test_case "bounds detect violation" `Quick test_bounds_detect_violation;
    Alcotest.test_case "unsplittable simple" `Quick test_unsplittable_simple;
    Alcotest.test_case "unsplittable dominates online" `Quick
      test_unsplittable_dominates_online;
    Alcotest.test_case "unsplittable guard" `Quick test_unsplittable_guard;
    Alcotest.test_case "fleischer matches paper variant" `Quick
      test_fleischer_matches_paper_variant;
    Alcotest.test_case "transit-stub shape" `Quick test_transit_stub_shape;
    Alcotest.test_case "transit-stub funnels traffic" `Quick
      test_transit_stub_funnels_traffic;
    Alcotest.test_case "randomized ties stay shortest" `Quick
      test_randomized_routes_still_shortest;
    Alcotest.test_case "randomized ties vary" `Quick test_randomized_seed_changes_ties;
    Alcotest.test_case "churn trace sane" `Quick test_churn_trace_sane;
    Alcotest.test_case "churn load released" `Quick test_churn_load_released;
    Alcotest.test_case "churn determinism" `Quick test_churn_determinism;
    Alcotest.test_case "churn admission control" `Quick test_churn_admission_control;
    Alcotest.test_case "churn validation" `Quick test_churn_validation;
  ]
