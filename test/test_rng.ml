(* Tests for the deterministic splittable PRNG. *)

let check = Alcotest.check
let checkb = Alcotest.(check bool)

let test_determinism () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Rng.create 7 and b = Rng.create 8 in
  let differs = ref false in
  for _ = 1 to 16 do
    if Rng.bits64 a <> Rng.bits64 b then differs := true
  done;
  checkb "different seeds diverge" true !differs

let test_copy_preserves_stream () =
  let a = Rng.create 99 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  for _ = 1 to 50 do
    check Alcotest.int64 "copy continues identically" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_split_diverges () =
  let a = Rng.create 123 in
  let b = Rng.split a in
  let differs = ref false in
  for _ = 1 to 16 do
    if Rng.bits64 a <> Rng.bits64 b then differs := true
  done;
  checkb "split stream differs" true !differs

let test_int_bounds () =
  let rng = Rng.create 5 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 17 in
    checkb "in range" true (v >= 0 && v < 17)
  done

let test_int_rejects_nonpositive () =
  let rng = Rng.create 5 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_uniform_range () =
  let rng = Rng.create 11 in
  for _ = 1 to 1000 do
    let u = Rng.uniform rng in
    checkb "in [0,1)" true (u >= 0.0 && u < 1.0)
  done

let test_uniform_mean () =
  let rng = Rng.create 13 in
  let n = 20000 in
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. Rng.uniform rng
  done;
  let mean = !acc /. float_of_int n in
  checkb "mean near 0.5" true (abs_float (mean -. 0.5) < 0.02)

let test_shuffle_is_permutation () =
  let rng = Rng.create 3 in
  let arr = Array.init 50 (fun i -> i) in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  check Alcotest.(array int) "permutation" (Array.init 50 (fun i -> i)) sorted

let test_sample_without_replacement () =
  let rng = Rng.create 17 in
  for _ = 1 to 50 do
    let s = Rng.sample_without_replacement rng ~n:30 ~k:10 in
    check Alcotest.int "k elements" 10 (Array.length s);
    let seen = Hashtbl.create 10 in
    Array.iter
      (fun v ->
        checkb "in range" true (v >= 0 && v < 30);
        checkb "distinct" false (Hashtbl.mem seen v);
        Hashtbl.replace seen v ())
      s
  done

let test_sample_full () =
  let rng = Rng.create 19 in
  let s = Rng.sample_without_replacement rng ~n:8 ~k:8 in
  let sorted = Array.copy s in
  Array.sort compare sorted;
  check Alcotest.(array int) "full sample is a permutation"
    (Array.init 8 (fun i -> i)) sorted

let test_sample_rejects_k_gt_n () =
  let rng = Rng.create 19 in
  Alcotest.check_raises "k > n"
    (Invalid_argument "Rng.sample_without_replacement: k > n") (fun () ->
      ignore (Rng.sample_without_replacement rng ~n:3 ~k:4))

let test_choose_weighted_support () =
  let rng = Rng.create 23 in
  let weights = [| 0.0; 2.0; 0.0; 1.0 |] in
  for _ = 1 to 500 do
    let i = Rng.choose_weighted rng weights in
    checkb "only positive-weight indices" true (i = 1 || i = 3)
  done

let test_choose_weighted_proportions () =
  let rng = Rng.create 29 in
  let weights = [| 1.0; 3.0 |] in
  let counts = [| 0; 0 |] in
  let n = 20000 in
  for _ = 1 to n do
    let i = Rng.choose_weighted rng weights in
    counts.(i) <- counts.(i) + 1
  done;
  let p1 = float_of_int counts.(1) /. float_of_int n in
  checkb "roughly 3/4" true (abs_float (p1 -. 0.75) < 0.02)

let test_choose_weighted_rejects_zero () =
  let rng = Rng.create 29 in
  Alcotest.check_raises "all zero"
    (Invalid_argument "Rng.choose_weighted: all weights zero") (fun () ->
      ignore (Rng.choose_weighted rng [| 0.0; 0.0 |]))

let test_exponential_positive () =
  let rng = Rng.create 31 in
  for _ = 1 to 1000 do
    checkb "nonnegative" true (Rng.exponential rng ~mean:2.0 >= 0.0)
  done

let test_pick () =
  let rng = Rng.create 37 in
  let arr = [| "a"; "b"; "c" |] in
  for _ = 1 to 100 do
    let x = Rng.pick rng arr in
    checkb "member" true (Array.exists (fun y -> y = x) arr)
  done

let qcheck_int_uniformish =
  QCheck.Test.make ~name:"rng int covers all residues" ~count:50
    QCheck.(int_range 2 20)
    (fun bound ->
      let rng = Rng.create bound in
      let seen = Array.make bound false in
      for _ = 1 to bound * 200 do
        seen.(Rng.int rng bound) <- true
      done;
      Array.for_all (fun b -> b) seen)

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "copy preserves stream" `Quick test_copy_preserves_stream;
    Alcotest.test_case "split diverges" `Quick test_split_diverges;
    Alcotest.test_case "int bounds" `Quick test_int_bounds;
    Alcotest.test_case "int rejects nonpositive" `Quick test_int_rejects_nonpositive;
    Alcotest.test_case "uniform range" `Quick test_uniform_range;
    Alcotest.test_case "uniform mean" `Quick test_uniform_mean;
    Alcotest.test_case "shuffle permutation" `Quick test_shuffle_is_permutation;
    Alcotest.test_case "sample without replacement" `Quick test_sample_without_replacement;
    Alcotest.test_case "full sample" `Quick test_sample_full;
    Alcotest.test_case "sample rejects k>n" `Quick test_sample_rejects_k_gt_n;
    Alcotest.test_case "weighted support" `Quick test_choose_weighted_support;
    Alcotest.test_case "weighted proportions" `Quick test_choose_weighted_proportions;
    Alcotest.test_case "weighted rejects zero" `Quick test_choose_weighted_rejects_zero;
    Alcotest.test_case "exponential positive" `Quick test_exponential_positive;
    Alcotest.test_case "pick member" `Quick test_pick;
    QCheck_alcotest.to_alcotest qcheck_int_uniformish;
  ]
