(* Tests for topology generators, Route, Ip_routing, Dynamic_routing. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-9))

(* --- Generators -------------------------------------------------------- *)

let test_waxman_shape () =
  let rng = Rng.create 1 in
  let p = { Waxman.default_params with n = 60 } in
  let t = Waxman.generate rng p in
  checki "node count" 60 (Topology.n_nodes t);
  (* incremental attachment with m=2: node 1 adds 1 edge, others 2 *)
  checki "edge count" (1 + (2 * 58)) (Topology.n_links t);
  checkb "connected" true (Topology.check t = None)

let test_waxman_deterministic () =
  let gen () =
    let rng = Rng.create 77 in
    Waxman.generate rng { Waxman.default_params with n = 30 }
  in
  let a = gen () and b = gen () in
  checki "same edges" (Topology.n_links a) (Topology.n_links b);
  let ea = Graph.edges a.Topology.graph and eb = Graph.edges b.Topology.graph in
  Array.iteri
    (fun i e ->
      checki "same endpoints u" e.Graph.u eb.(i).Graph.u;
      checki "same endpoints v" e.Graph.v eb.(i).Graph.v)
    ea

let test_waxman_validation () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "n too small" (Invalid_argument "Waxman.generate: n < 2")
    (fun () -> ignore (Waxman.generate rng { Waxman.default_params with n = 1 }))

let test_barabasi_shape () =
  let rng = Rng.create 2 in
  let t = Barabasi.generate rng { Barabasi.default_params with n = 50; m = 2 } in
  checki "nodes" 50 (Topology.n_nodes t);
  checkb "connected" true (Topology.check t = None);
  (* seed clique on 3 nodes (3 edges) + 2 per additional node *)
  checki "edges" (3 + (2 * 47)) (Topology.n_links t)

let test_barabasi_hubs () =
  (* preferential attachment should produce a heavier max degree than
     the minimum *)
  let rng = Rng.create 3 in
  let t = Barabasi.generate rng { Barabasi.default_params with n = 200; m = 2 } in
  let g = t.Topology.graph in
  let maxdeg = ref 0 in
  for v = 0 to 199 do
    maxdeg := max !maxdeg (Graph.degree g v)
  done;
  checkb "has a hub" true (!maxdeg >= 10)

let test_two_level_shape () =
  let rng = Rng.create 4 in
  let p = Two_level.small_params ~n_as:4 ~routers_per_as:20 in
  let t = Two_level.generate rng p in
  checki "nodes" 80 (Topology.n_nodes t);
  checkb "connected" true (Topology.check t = None);
  (* AS membership is recorded *)
  checki "as of router 0" 0 t.Topology.nodes.(0).Topology.as_id;
  checki "as of router 79" 3 t.Topology.nodes.(79).Topology.as_id;
  (* border routers exist *)
  checkb "has borders" true
    (Array.exists (fun n -> n.Topology.is_border) t.Topology.nodes)

let test_capacity_ops () =
  let rng = Rng.create 5 in
  let t = Waxman.generate rng { Waxman.default_params with n = 20 } in
  Topology.set_uniform_capacity t 7.0;
  Graph.iter_edges t.Topology.graph (fun e -> checkf "uniform" 7.0 e.Graph.capacity);
  Topology.scale_capacities t ~factor:2.0;
  Graph.iter_edges t.Topology.graph (fun e -> checkf "scaled" 14.0 e.Graph.capacity);
  Topology.randomize_capacities t (Rng.create 6) ~low:1.0 ~high:2.0;
  Graph.iter_edges t.Topology.graph (fun e ->
      checkb "in range" true (e.Graph.capacity >= 1.0 && e.Graph.capacity <= 2.0))

(* --- Route -------------------------------------------------------------- *)

let path_graph () =
  Graph.of_edges ~n:4 [ (0, 1, 5.0); (1, 2, 3.0); (2, 3, 4.0) ]

let test_route_basics () =
  let g = path_graph () in
  let r = Route.make ~src:0 ~dst:3 [| 0; 1; 2 |] in
  checki "hops" 3 (Route.hops r);
  checkf "weight" 3.0 (Route.weight r ~length:Dijkstra.hop_length);
  checkb "valid" true (Route.is_valid g r);
  checkb "mem" true (Route.mem r 1);
  checkb "not mem" false (Route.mem r 9);
  checkf "bottleneck" 3.0 (Route.bottleneck r ~capacity:(Graph.capacity g))

let test_route_reverse () =
  let g = path_graph () in
  let r = Route.make ~src:0 ~dst:3 [| 0; 1; 2 |] in
  let rev = Route.reverse r in
  checki "src" 3 rev.Route.src;
  checki "dst" 0 rev.Route.dst;
  checkb "still valid" true (Route.is_valid g rev)

let test_route_invalid_detected () =
  let g = path_graph () in
  let bogus = Route.make ~src:0 ~dst:3 [| 0; 2; 1 |] in
  checkb "broken path rejected" false (Route.is_valid g bogus)

let test_route_empty () =
  let r = Route.make ~src:2 ~dst:2 [||] in
  checki "zero hops" 0 (Route.hops r);
  checkf "infinite bottleneck" infinity (Route.bottleneck r ~capacity:(fun _ -> 1.0))

(* --- Ip_routing ---------------------------------------------------------- *)

let grid_graph () =
  (* 0-1-2 / 3-4-5 grid *)
  Graph.of_edges ~n:6
    [ (0, 1, 1.0); (1, 2, 1.0); (3, 4, 1.0); (4, 5, 1.0);
      (0, 3, 1.0); (1, 4, 1.0); (2, 5, 1.0) ]

let test_ip_routes_valid_and_shortest () =
  let g = grid_graph () in
  let members = [| 0; 2; 5 |] in
  let table = Ip_routing.compute g ~members in
  Array.iter
    (fun u ->
      Array.iter
        (fun v ->
          if u <> v then begin
            let r = Ip_routing.route table u v in
            checkb "valid" true (Route.is_valid g r);
            let d = Traverse.bfs g ~source:u in
            checki "shortest hops" d.(v) (Route.hops r)
          end)
        members)
    members

let test_ip_routes_symmetric () =
  let g = grid_graph () in
  let table = Ip_routing.compute g ~members:[| 0; 5 |] in
  let fwd = Ip_routing.route table 0 5 in
  let bwd = Ip_routing.route table 5 0 in
  Alcotest.(check (array int)) "reverse edges"
    (Route.reverse fwd).Route.edges bwd.Route.edges

let test_ip_max_hops_and_coverage () =
  let g = grid_graph () in
  let table = Ip_routing.compute g ~members:[| 0; 2; 5 |] in
  checki "max hops" 3 (Ip_routing.max_hops table);
  let covered = Ip_routing.covered_edges table in
  checkb "nonempty" true (Array.length covered > 0);
  checkb "sorted" true
    (Array.for_all (fun i -> i >= 0) covered
    &&
    let ok = ref true in
    for i = 1 to Array.length covered - 1 do
      if covered.(i) <= covered.(i - 1) then ok := false
    done;
    !ok)

let test_ip_non_member_raises () =
  let g = grid_graph () in
  let table = Ip_routing.compute g ~members:[| 0; 5 |] in
  Alcotest.check_raises "non-member"
    (Invalid_argument "Ip_routing.route: vertex 4 is not a session member")
    (fun () -> ignore (Ip_routing.route table 0 4))

let test_ip_disconnected_fails () =
  let g = Graph.of_edges ~n:4 [ (0, 1, 1.0); (2, 3, 1.0) ] in
  Alcotest.check_raises "disconnected"
    (Failure "Ip_routing.compute: member pair disconnected") (fun () ->
      ignore (Ip_routing.compute g ~members:[| 0; 3 |]))

(* --- Dynamic_routing ------------------------------------------------------ *)

let test_dynamic_responds_to_lengths () =
  (* two routes from 0 to 2: direct edge vs detour; inflate the direct
     edge and the snapshot must switch *)
  let g = Graph.of_edges ~n:3 [ (0, 2, 1.0); (0, 1, 1.0); (1, 2, 1.0) ] in
  let cheap_direct = Dynamic_routing.routes g ~members:[| 0; 2 |] ~length:Dijkstra.hop_length in
  checki "direct route" 1 (Route.hops (Dynamic_routing.route cheap_direct 0 2));
  let lens = [| 10.0; 1.0; 1.0 |] in
  let snap = Dynamic_routing.routes g ~members:[| 0; 2 |] ~length:(fun i -> lens.(i)) in
  checki "detour" 2 (Route.hops (Dynamic_routing.route snap 0 2));
  checkf "distance" 2.0 (Dynamic_routing.distance snap 0 2)

let test_dynamic_routes_valid () =
  let rng = Rng.create 9 in
  let t = Waxman.generate rng { Waxman.default_params with n = 40 } in
  let g = t.Topology.graph in
  let members = Rng.sample_without_replacement rng ~n:40 ~k:6 in
  let lens = Array.init (Graph.n_edges g) (fun i -> 0.5 +. float_of_int (i mod 7)) in
  let snap = Dynamic_routing.routes g ~members ~length:(fun i -> lens.(i)) in
  Array.iter
    (fun u ->
      Array.iter
        (fun v ->
          if u <> v then
            checkb "valid" true (Route.is_valid g (Dynamic_routing.route snap u v)))
        members)
    members

let suite =
  [
    Alcotest.test_case "waxman shape" `Quick test_waxman_shape;
    Alcotest.test_case "waxman deterministic" `Quick test_waxman_deterministic;
    Alcotest.test_case "waxman validation" `Quick test_waxman_validation;
    Alcotest.test_case "barabasi shape" `Quick test_barabasi_shape;
    Alcotest.test_case "barabasi hubs" `Quick test_barabasi_hubs;
    Alcotest.test_case "two-level shape" `Quick test_two_level_shape;
    Alcotest.test_case "capacity ops" `Quick test_capacity_ops;
    Alcotest.test_case "route basics" `Quick test_route_basics;
    Alcotest.test_case "route reverse" `Quick test_route_reverse;
    Alcotest.test_case "route invalid detected" `Quick test_route_invalid_detected;
    Alcotest.test_case "route empty" `Quick test_route_empty;
    Alcotest.test_case "ip routes valid+shortest" `Quick test_ip_routes_valid_and_shortest;
    Alcotest.test_case "ip routes symmetric" `Quick test_ip_routes_symmetric;
    Alcotest.test_case "ip max hops / coverage" `Quick test_ip_max_hops_and_coverage;
    Alcotest.test_case "ip non-member raises" `Quick test_ip_non_member_raises;
    Alcotest.test_case "ip disconnected fails" `Quick test_ip_disconnected_fails;
    Alcotest.test_case "dynamic responds to lengths" `Quick test_dynamic_responds_to_lengths;
    Alcotest.test_case "dynamic routes valid" `Quick test_dynamic_routes_valid;
  ]
