(* The churn-level telemetry pipeline end to end: Engine.apply emits
   the overlay-engine-trace/1 vocabulary into an Obs_stream, the file
   reads back strict-clean, the windowed report's totals match the
   engine's own stats, the live registry histograms agree with the
   trace-derived quantiles bit-for-bit (lossless float round-trip),
   and instrumentation never perturbs solver output. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf = Alcotest.(check (float 0.0))  (* exact equality *)

let waxman_graph ~seed ~n =
  let rng = Rng.create seed in
  (Waxman.generate rng { Waxman.default_params with n }).Topology.graph

let sessions_on ~seed ~graph ~count ~size =
  let rng = Rng.create seed in
  Session.random_batch rng ~topology_size:(Graph.n_vertices graph) ~count ~size
    ~demand:100.0

let fresh_members ~seed graph ~size =
  let rng = Rng.create seed in
  (Session.random rng ~id:0 ~topology_size:(Graph.n_vertices graph) ~size
     ~demand:1.0)
    .Session.members

let ev at event = { Churn.at; event }

(* one event of every churn kind, so every event-type code crosses the
   wire *)
let event_sequence graph =
  let members = fresh_members ~seed:401 graph ~size:5 in
  [
    ev 1.0 (Churn.Session_join { id = 100; members; demand = 50.0 });
    ev 2.0 (Churn.Demand_change { id = 100; demand = 75.0 });
    ev 3.0 (Churn.Capacity_change { edge = 3; capacity = 77.0 });
    ev 4.0 (Churn.Session_leave { id = 100 });
  ]

(* replay the canonical scenario with [obs], returning the engine and
   its reports; the initial solve over 3 sessions emits the "initial"
   event, the 4 churn events the other codes *)
let replay_with obs =
  let graph = waxman_graph ~seed:70 ~n:30 in
  let sessions = sessions_on ~seed:71 ~graph ~count:3 ~size:5 in
  let config = { Engine.default_config with Engine.obs } in
  let t = Engine.create ~config graph sessions in
  let reports = Engine.replay t (event_sequence graph) in
  (t, reports)

let with_stream_capture f =
  let path = Filename.temp_file "engine_trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      (* the registered latency histogram is process-global and has
         accumulated samples from earlier suites; start it clean so the
         live quantiles cover exactly this capture *)
      Obs.Histogram.reset (Obs.Histogram.make "engine.resolve_s");
      let s = Obs_stream.create ~schema:Obs_export.schema_engine path in
      let t, reports =
        Fun.protect
          ~finally:(fun () -> Obs_stream.close s)
          (fun () -> replay_with (Obs_stream.sink s))
      in
      match Obs_export.read_trace path with
      | Error msg -> Alcotest.failf "read_trace failed: %s" msg
      | Ok r -> f t reports r)

(* --- round trip --------------------------------------------------------- *)

let test_roundtrip_clean () =
  with_stream_capture (fun _t reports r ->
      checki "one report per churn event" 4 (List.length reports);
      checki "stream is schema 2" 2 r.Obs_export.r_schema;
      Alcotest.(check string)
        "header carries the engine schema" Obs_export.schema_engine
        r.Obs_export.r_schema_name;
      checkb "capture is not truncated" false r.Obs_export.r_truncated;
      checkb "strict-clean: no validation issues" true
        (r.Obs_export.r_issues = []);
      checki "nothing dropped" 0 r.Obs_export.r_dropped;
      checki "every emission retained" r.Obs_export.r_emitted
        (Array.length r.Obs_export.r_events))

(* the wire code table in lib/engine and the reporting table in
   lib/analysis are maintained by hand on both sides (analysis sits
   below core and cannot see Churn); this pin breaks if either drifts *)
let test_event_code_table () =
  Alcotest.(check (array string))
    "event-kind code table"
    [| "join"; "leave"; "demand"; "capacity"; "initial" |]
    Analysis.engine_event_kinds;
  with_stream_capture (fun _t _reports r ->
      let rep = Analysis.engine_report r.Obs_export.r_events in
      Alcotest.(check (array int))
        "one event of each kind attributed to its code"
        [| 1; 1; 1; 1; 1 |]
        rep.Analysis.g_total.Analysis.w_kinds)

let test_report_matches_engine () =
  with_stream_capture (fun t _reports r ->
      let s = Engine.stats t in
      let rep = Analysis.engine_report r.Obs_export.r_events in
      let total = rep.Analysis.g_total in
      checki "report events = engine resolves" s.Engine.resolves
        rep.Analysis.g_events;
      checki "warm split matches" s.Engine.warm_accepted
        total.Analysis.w_warm;
      checki "cold split matches" s.Engine.cold_solves total.Analysis.w_cold;
      checki "windows partition the events" rep.Analysis.g_events
        (Array.fold_left
           (fun acc (w : Analysis.engine_window) -> acc + w.Analysis.w_events)
           0 rep.Analysis.g_windows);
      checkb "positive event rate" true (rep.Analysis.g_events_per_s > 0.0);
      (* latencies round-trip losslessly (floats render exactly), so the
         trace-derived quantiles equal the live registry histogram's *)
      (match Obs.Registry.find_histogram "engine.resolve_s" with
      | None -> Alcotest.fail "engine.resolve_s not registered"
      | Some h ->
        checkf "trace p50 = live histogram p50"
          (Obs.Histogram.quantile h 0.50)
          total.Analysis.w_p50;
        checkf "trace p99 = live histogram p99"
          (Obs.Histogram.quantile h 0.99)
          total.Analysis.w_p99;
        checkf "trace max = live histogram max"
          (Obs.Histogram.quantile h 1.0)
          total.Analysis.w_max);
      (* rung telemetry is internally consistent *)
      checkb "rung attempts cover warm acceptances" true
        (total.Analysis.w_rungs >= total.Analysis.w_warm))

let test_report_rendering () =
  with_stream_capture (fun _t _reports r ->
      let rep = Analysis.engine_report ~window:0.5 r.Obs_export.r_events in
      let csv = Analysis.engine_csv rep in
      (match String.split_on_char '\n' (String.trim csv) with
      | header :: rows ->
        Alcotest.(check string)
          "csv header"
          "window,start_s,end_s,events,joins,leaves,demand,capacity,initial,\
           warm,cold,rung_attempts,escalations,cold_fallbacks,certify_fails,\
           p50_ms,p90_ms,p99_ms,max_ms"
          header;
        checki "one row per window plus the total row"
          (Array.length rep.Analysis.g_windows + 1)
          (List.length rows)
      | [] -> Alcotest.fail "empty csv");
      let txt = Analysis.render_engine rep in
      checkb "text report mentions the event rate" true
        (String.length txt > 0);
      (* empty capture degrades gracefully *)
      let empty = Analysis.engine_report [||] in
      checki "empty capture has no events" 0 empty.Analysis.g_events;
      checkb "empty capture renders" true
        (String.length (Analysis.render_engine empty) > 0))

(* --- the cardinal rule: telemetry never perturbs output ----------------- *)

let test_instrumented_output_identical () =
  let _, null_reports = replay_with Obs.Sink.null in
  with_stream_capture (fun t streamed_reports _r ->
      List.iter2
        (fun (a : Engine.report) (b : Engine.report) ->
          checkf "objective bit-identical under streaming" a.Engine.objective
            b.Engine.objective;
          checkb "same path taken" true (a.Engine.warm = b.Engine.warm);
          checki "same attempt count" a.Engine.attempts b.Engine.attempts)
        null_reports streamed_reports;
      checkb "final objective positive" true (Engine.objective t > 0.0))

(* --- registry exposition ------------------------------------------------ *)

let test_prometheus_valid () =
  with_stream_capture (fun _t _reports _r ->
      let text = Metrics_export.prometheus () in
      (match Metrics_export.validate text with
      | Ok () -> ()
      | Error e -> Alcotest.failf "generated exposition rejected: %s" e);
      checkb "engine histogram exposed with cumulative buckets" true
        (let sub = "engine_resolve_s_bucket{le=\"" in
         let n = String.length text and m = String.length sub in
         let rec scan i =
           i + m <= n && (String.sub text i m = sub || scan (i + 1))
         in
         scan 0);
      (* a dump without the +Inf bucket must be rejected *)
      let bad =
        "# TYPE broken histogram\n\
         broken_bucket{le=\"1\"} 1\n\
         broken_sum 1\n\
         broken_count 1\n"
      in
      (match Metrics_export.validate bad with
      | Ok () -> Alcotest.fail "missing +Inf bucket accepted"
      | Error _ -> ());
      (* non-cumulative bucket counts must be rejected *)
      let bad2 =
        "# TYPE b histogram\n\
         b_bucket{le=\"1\"} 5\n\
         b_bucket{le=\"2\"} 3\n\
         b_bucket{le=\"+Inf\"} 5\n\
         b_sum 1\n\
         b_count 5\n"
      in
      match Metrics_export.validate bad2 with
      | Ok () -> Alcotest.fail "non-cumulative buckets accepted"
      | Error _ -> ())

let test_snapshot_quantile_agrees () =
  with_stream_capture (fun _t _reports _r ->
      match Obs.Registry.find_histogram "engine.resolve_s" with
      | None -> Alcotest.fail "engine.resolve_s not registered"
      | Some h ->
        let s = Obs.Histogram.snapshot h in
        List.iter
          (fun p ->
            checkf "snapshot_quantile = live quantile"
              (Obs.Histogram.quantile h p)
              (Obs_export.snapshot_quantile s p))
          [ 0.0; 0.5; 0.9; 0.99; 1.0 ])

let suite =
  [
    Alcotest.test_case "stream round-trips strict-clean" `Quick
      test_roundtrip_clean;
    Alcotest.test_case "event-code table pinned on both sides" `Quick
      test_event_code_table;
    Alcotest.test_case "windowed report matches engine stats" `Quick
      test_report_matches_engine;
    Alcotest.test_case "report rendering (csv + text + empty)" `Quick
      test_report_rendering;
    Alcotest.test_case "streaming leaves output bit-identical" `Quick
      test_instrumented_output_identical;
    Alcotest.test_case "prometheus exposition validates" `Quick
      test_prometheus_valid;
    Alcotest.test_case "snapshot_quantile agrees with live quantile" `Quick
      test_snapshot_quantile_agrees;
  ]
