(* Tests for the trace pipeline added around lib/obs: the streaming
   JSONL sink (Obs_stream, schema overlay-obs-trace/2), the trace
   reader (Obs_export.read_trace over both schemas, including
   ring-wraparound and truncated streams), and the lib/analysis
   reports, checked against hand-built event arrays with known
   answers.  Ends with the parallel contract: a stream captured at
   -j 2 matches the -j 1 stream event for event modulo timestamps. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf = Alcotest.(check (float 0.0))  (* exact equality *)

let with_tmp f =
  let path = Filename.temp_file "test_trace" ".json" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let ok_exn = function
  | Ok r -> r
  | Error msg -> Alcotest.failf "read_trace failed: %s" msg

(* ---------- round trips ---------- *)

(* Payload values exactly representable in the lossy %.12g of schema 1,
   so both schemas round-trip them bit for bit. *)
let emit_sample sink =
  let open Obs in
  Sink.emit sink Run_start ~session:(Name.intern "maxflow") ~a:2.0 ~b:0.05;
  Sink.emit sink Iter_start ~session:0 ~a:1.0 ~b:0.0;
  Sink.emit sink Mst_recompute ~session:0 ~a:12.0 ~b:0.0;
  Sink.emit sink Iter_end ~session:0 ~a:1.0 ~b:0.25;
  Sink.emit sink Rescale ~session:(-1) ~a:1.5 ~b:0.0;
  Sink.emit sink Session_rate ~session:0 ~a:0.25 ~b:0.0;
  Sink.emit sink Run_end ~session:(Name.intern "maxflow") ~a:1.0 ~b:0.25;
  7

let check_sample_events ~schema (r : Obs_export.read_result) =
  checki "all events retained" 7 (Array.length r.Obs_export.r_events);
  checki "emitted" 7 r.Obs_export.r_emitted;
  checki "dropped" 0 r.Obs_export.r_dropped;
  checkb "no validation issues" true (r.Obs_export.r_issues = []);
  checkb "not truncated" false r.Obs_export.r_truncated;
  let e = r.Obs_export.r_events in
  checki "seq starts at 0" 0 e.(0).Obs.Event.seq;
  checki "seq contiguous" 6 e.(6).Obs.Event.seq;
  checkb "kinds in order" true
    (Array.to_list (Array.map (fun ev -> ev.Obs.Event.kind) e)
    = [
        Obs.Run_start; Obs.Iter_start; Obs.Mst_recompute; Obs.Iter_end;
        Obs.Rescale; Obs.Session_rate; Obs.Run_end;
      ]);
  checki (schema ^ ": interned name survives") (Obs.Name.intern "maxflow")
    e.(0).Obs.Event.session;
  checki "slot survives" (-1) e.(4).Obs.Event.session;
  checkf (schema ^ ": a payload bit-identical") 12.0 e.(2).Obs.Event.a;
  checkf (schema ^ ": b payload bit-identical") 0.05 e.(0).Obs.Event.b;
  let mono = ref true in
  Array.iteri
    (fun i ev ->
      if i > 0 && ev.Obs.Event.time < e.(i - 1).Obs.Event.time then mono := false)
    e;
  checkb "times non-decreasing" true !mono

let test_roundtrip_schema1 () =
  with_tmp (fun path ->
      let tr = Obs.Trace.create ~capacity:64 () in
      ignore (emit_sample (Obs.Trace.sink tr));
      Obs_export.trace_to_file path tr;
      let r = ok_exn (Obs_export.read_trace path) in
      checki "schema sniffed as 1" 1 r.Obs_export.r_schema;
      checkb "ring capacity reported" true (r.Obs_export.r_capacity = Some 64);
      check_sample_events ~schema:"schema1" r;
      (* schema-1 times go through %.12g: equal to ~1e-12 relative *)
      let ring = Array.of_list (Obs.Trace.events tr) in
      Array.iteri
        (fun i ev ->
          let dt = abs_float (ev.Obs.Event.time -. ring.(i).Obs.Event.time) in
          checkb "time round-trips within 1e-6" true (dt < 1e-6))
        r.Obs_export.r_events)

let test_roundtrip_schema2 () =
  with_tmp (fun path ->
      let witness = ref [] in
      let stream = Obs_stream.create path in
      let tee =
        Obs.Sink.make (fun kind ~session ~a ~b ->
            Obs.Sink.emit (Obs_stream.sink stream) kind ~session ~a ~b;
            witness := (kind, session, a, b) :: !witness)
      in
      (* awkward floats: the stream's %.12g→%.17g fallback must keep
         every bit, unlike schema 1 *)
      ignore (emit_sample tee);
      Obs.Sink.emit tee Obs.Iter_end ~session:1 ~a:8.0 ~b:0.1;
      Obs.Sink.emit tee Obs.Iter_end ~session:1 ~a:9.0 ~b:(1.0 /. 3.0);
      Obs.Sink.emit tee Obs.Iter_end ~session:1 ~a:10.0 ~b:1e-300;
      checki "emitted counts writes" 10 (Obs_stream.emitted stream);
      Obs_stream.close stream;
      Obs_stream.close stream (* idempotent *);
      checkb "emitting after close raises" true
        (try
           Obs.Sink.emit (Obs_stream.sink stream) Obs.Rescale ~session:0 ~a:0.0
             ~b:0.0;
           false
         with Invalid_argument _ -> true);
      let r = ok_exn (Obs_export.read_trace path) in
      checki "schema sniffed as 2" 2 r.Obs_export.r_schema;
      checkb "streams have no capacity" true (r.Obs_export.r_capacity = None);
      checki "footer emitted count" 10 r.Obs_export.r_emitted;
      checki "nothing dropped" 0 r.Obs_export.r_dropped;
      checkb "no validation issues" true (r.Obs_export.r_issues = []);
      let expected = Array.of_list (List.rev !witness) in
      checki "every event read back" (Array.length expected)
        (Array.length r.Obs_export.r_events);
      Array.iteri
        (fun i ev ->
          let kind, session, a, b = expected.(i) in
          checkb "kind" true (ev.Obs.Event.kind = kind);
          checki "session" session ev.Obs.Event.session;
          checkf "a bit-identical" a ev.Obs.Event.a;
          checkf "b bit-identical" b ev.Obs.Event.b;
          checki "seq contiguous from 0" i ev.Obs.Event.seq)
        r.Obs_export.r_events;
      (* explicit jsonl entry point agrees with the sniffer *)
      let r2 = ok_exn (Obs_export.read_trace_jsonl path) in
      checki "read_trace_jsonl agrees" (Array.length r.Obs_export.r_events)
        (Array.length r2.Obs_export.r_events))

let test_wraparound_read () =
  with_tmp (fun path ->
      let tr = Obs.Trace.create ~capacity:8 () in
      let sink = Obs.Trace.sink tr in
      for i = 0 to 19 do
        Obs.Sink.emit sink Obs.Iter_start ~session:i ~a:(float_of_int i) ~b:0.0
      done;
      Obs_export.trace_to_file path tr;
      let r = ok_exn (Obs_export.read_trace path) in
      checki "retained window" 8 (Array.length r.Obs_export.r_events);
      checki "emitted" 20 r.Obs_export.r_emitted;
      checki "dropped" 12 r.Obs_export.r_dropped;
      checkb "a wrapped ring is not an issue" true (r.Obs_export.r_issues = []);
      checki "first retained seq = dropped" 12
        r.Obs_export.r_events.(0).Obs.Event.seq;
      checki "last seq" 19 r.Obs_export.r_events.(7).Obs.Event.seq)

let test_reader_strictness () =
  let read_str content =
    with_tmp (fun path ->
        let oc = open_out path in
        output_string oc content;
        close_out oc;
        Obs_export.read_trace path)
  in
  (match read_str "not json at all" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed file accepted");
  (match read_str "{\"schema\":\"overlay-obs-trace/99\",\"events\":[]}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unsupported schema accepted");
  (* a truncated stream (no footer) parses with r_truncated set *)
  let truncated =
    "{\"schema\":\"overlay-obs-trace/2\"}\n\
     {\"seq\":0,\"t\":0.5,\"kind\":\"iter_start\",\"session\":0,\"a\":1,\"b\":0}\n"
  in
  (match read_str truncated with
  | Ok r ->
    checkb "missing footer -> truncated" true r.Obs_export.r_truncated;
    checki "events still parsed" 1 (Array.length r.Obs_export.r_events)
  | Error msg -> Alcotest.failf "truncated stream rejected: %s" msg);
  (* seq gaps, time regressions and unknown kinds are reported *)
  let anomalous =
    "{\"schema\":\"overlay-obs-trace/2\"}\n\
     {\"seq\":0,\"t\":1.0,\"kind\":\"iter_start\",\"session\":0,\"a\":1,\"b\":0}\n\
     {\"seq\":1,\"t\":0.5,\"kind\":\"bogus_kind\",\"session\":0,\"a\":0,\"b\":0}\n\
     {\"seq\":3,\"t\":0.6,\"kind\":\"iter_end\",\"session\":0,\"a\":1,\"b\":2}\n\
     {\"footer\":true,\"emitted\":3,\"dropped\":0}\n"
  in
  (match read_str anomalous with
  | Ok r ->
    checki "unknown kind excluded from events" 2
      (Array.length r.Obs_export.r_events);
    checkb "unknown kind reported" true
      (List.exists
         (fun m ->
           let has_sub sub =
             let n = String.length sub and ln = String.length m in
             let rec go i = i + n <= ln && (String.sub m i n = sub || go (i + 1)) in
             go 0
           in
           has_sub "bogus_kind")
         r.Obs_export.r_issues);
    checkb "seq gap and time regression reported" true
      (List.length r.Obs_export.r_issues >= 3)
  | Error msg -> Alcotest.failf "anomalous stream rejected outright: %s" msg)

(* Byte-level fixture corpus for the reader's error paths: structural
   failures must be Error, recoverable anomalies must land in r_issues
   with the events still usable. *)
let test_reader_error_corpus () =
  let read_str content =
    with_tmp (fun path ->
        let oc = open_out path in
        output_string oc content;
        close_out oc;
        Obs_export.read_trace path)
  in
  let issue_mentions r sub =
    List.exists
      (fun m ->
        let n = String.length sub and ln = String.length m in
        let rec go i = i + n <= ln && (String.sub m i n = sub || go (i + 1)) in
        go 0)
      r.Obs_export.r_issues
  in
  let expect_error ~what content =
    match read_str content with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s accepted" what
  in
  let expect_issue ~what ~mention content =
    match read_str content with
    | Error msg -> Alcotest.failf "%s rejected outright: %s" what msg
    | Ok r ->
      checkb
        (Printf.sprintf "%s reported (issues: %s)" what
           (String.concat " | " r.Obs_export.r_issues))
        true (issue_mentions r mention);
      r
  in
  (* schema 1: file truncated mid-JSON, at a byte offset inside the
     events array of a real capture *)
  with_tmp (fun path ->
      let tr = Obs.Trace.create ~capacity:64 () in
      ignore (emit_sample (Obs.Trace.sink tr));
      Obs_export.trace_to_file path tr;
      let whole =
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      expect_error ~what:"file truncated mid-JSON"
        (String.sub whole 0 (String.length whole * 3 / 5)));
  (* schema 1: corrupted seq numbering *)
  let r =
    expect_issue ~what:"schema-1 seq gap" ~mention:"seq 5"
      "{\"schema\":\"overlay-obs-trace/1\",\"emitted\":2,\"dropped\":0,\"events\":[\
       {\"seq\":0,\"t\":1.0,\"kind\":\"iter_start\",\"session\":0,\"a\":1,\"b\":0},\
       {\"seq\":5,\"t\":2.0,\"kind\":\"iter_end\",\"session\":0,\"a\":1,\"b\":0}]}"
  in
  checki "both events kept despite the gap" 2 (Array.length r.Obs_export.r_events);
  (* schema 1: unknown kind is excluded but reported, and keeps its slot
     in the seq validation *)
  let r =
    expect_issue ~what:"schema-1 unknown kind" ~mention:"future_kind"
      "{\"schema\":\"overlay-obs-trace/1\",\"emitted\":3,\"dropped\":0,\"events\":[\
       {\"seq\":0,\"t\":1.0,\"kind\":\"iter_start\",\"session\":0,\"a\":1,\"b\":0},\
       {\"seq\":1,\"t\":1.5,\"kind\":\"future_kind\",\"session\":0,\"a\":0,\"b\":0},\
       {\"seq\":2,\"t\":2.0,\"kind\":\"iter_end\",\"session\":0,\"a\":1,\"b\":0}]}"
  in
  checki "unknown kind excluded" 2 (Array.length r.Obs_export.r_events);
  checkb "no spurious seq issue around the skipped kind" true
    (not (issue_mentions r "seq"));
  (* schema 1: envelope counters disagreeing with the payload *)
  ignore
    (expect_issue ~what:"schema-1 recorded mismatch" ~mention:"recorded=5"
       "{\"schema\":\"overlay-obs-trace/1\",\"emitted\":1,\"recorded\":5,\"dropped\":0,\"events\":[\
        {\"seq\":0,\"t\":1.0,\"kind\":\"iter_start\",\"session\":0,\"a\":1,\"b\":0}]}");
  ignore
    (expect_issue ~what:"schema-1 emitted mismatch" ~mention:"emitted=9"
       "{\"schema\":\"overlay-obs-trace/1\",\"emitted\":9,\"dropped\":0,\"events\":[\
        {\"seq\":0,\"t\":1.0,\"kind\":\"iter_start\",\"session\":0,\"a\":1,\"b\":0}]}");
  (* structural field failures are fatal, not issues *)
  let event_with fields =
    Printf.sprintf
      "{\"schema\":\"overlay-obs-trace/1\",\"emitted\":1,\"dropped\":0,\"events\":[{%s}]}"
      fields
  in
  expect_error ~what:"missing t field"
    (event_with "\"seq\":0,\"kind\":\"iter_start\",\"session\":0,\"a\":1,\"b\":0");
  expect_error ~what:"non-numeric a"
    (event_with
       "\"seq\":0,\"t\":1.0,\"kind\":\"iter_start\",\"session\":0,\"a\":\"x\",\"b\":0");
  expect_error ~what:"non-integer seq"
    (event_with
       "\"seq\":0.5,\"t\":1.0,\"kind\":\"iter_start\",\"session\":0,\"a\":1,\"b\":0");
  expect_error ~what:"missing name and session"
    (event_with "\"seq\":0,\"t\":1.0,\"kind\":\"iter_start\",\"a\":1,\"b\":0");
  (* schema 2: events after the footer *)
  ignore
    (expect_issue ~what:"schema-2 event after footer" ~mention:"after the footer"
       "{\"schema\":\"overlay-obs-trace/2\"}\n\
        {\"seq\":0,\"t\":1.0,\"kind\":\"iter_start\",\"session\":0,\"a\":1,\"b\":0}\n\
        {\"footer\":true,\"emitted\":1,\"dropped\":0}\n\
        {\"seq\":1,\"t\":2.0,\"kind\":\"iter_end\",\"session\":0,\"a\":1,\"b\":0}\n");
  (* schema 2: duplicate footer *)
  ignore
    (expect_issue ~what:"schema-2 duplicate footer" ~mention:"duplicate footer"
       "{\"schema\":\"overlay-obs-trace/2\"}\n\
        {\"seq\":0,\"t\":1.0,\"kind\":\"iter_start\",\"session\":0,\"a\":1,\"b\":0}\n\
        {\"footer\":true,\"emitted\":1,\"dropped\":0}\n\
        {\"footer\":true,\"emitted\":1,\"dropped\":0}\n");
  (* schema 2: footer count anomalies *)
  ignore
    (expect_issue ~what:"schema-2 footer emitted mismatch" ~mention:"emitted=7"
       "{\"schema\":\"overlay-obs-trace/2\"}\n\
        {\"seq\":0,\"t\":1.0,\"kind\":\"iter_start\",\"session\":0,\"a\":1,\"b\":0}\n\
        {\"footer\":true,\"emitted\":7,\"dropped\":0}\n");
  ignore
    (expect_issue ~what:"schema-2 footer without emitted"
       ~mention:"no emitted count"
       "{\"schema\":\"overlay-obs-trace/2\"}\n\
        {\"seq\":0,\"t\":1.0,\"kind\":\"iter_start\",\"session\":0,\"a\":1,\"b\":0}\n\
        {\"footer\":true}\n");
  (* schema 2: a structurally broken event line is fatal *)
  expect_error ~what:"schema-2 non-numeric t"
    "{\"schema\":\"overlay-obs-trace/2\"}\n\
     {\"seq\":0,\"t\":\"later\",\"kind\":\"iter_start\",\"session\":0,\"a\":1,\"b\":0}\n\
     {\"footer\":true,\"emitted\":1,\"dropped\":0}\n"

(* ---------- analysis on hand-built events ---------- *)

let ev seq time kind session a b = { Obs.Event.seq; time; kind; session; a; b }

(* A tiny fabricated run with known answers: 3 iterations routing
   1+2+3 = 6 flow, one rescale, one demand doubling, two final rates,
   objective 6.5 after 3.0 reported iterations. *)
let fabricated () =
  let n = Obs.Name.intern "fab" in
  [|
    ev 0 0.0 Obs.Run_start n 2.0 0.05;
    ev 1 0.1 Obs.Phase_start 0 1.0 0.0;
    ev 2 0.2 Obs.Iter_start 0 1.0 0.0;
    ev 3 0.3 Obs.Iter_end 0 1.0 1.0;
    ev 4 0.4 Obs.Rescale (-1) 2.5 0.0;
    ev 5 0.5 Obs.Iter_start 1 2.0 0.0;
    ev 6 0.7 Obs.Iter_end 1 2.0 2.0;
    ev 7 0.8 Obs.Demand_double 0 2.0 0.0;
    ev 8 0.9 Obs.Iter_start 0 3.0 0.0;
    ev 9 1.1 Obs.Iter_end 0 3.0 3.0;
    ev 10 1.2 Obs.Session_rate 0 4.0 0.0;
    ev 11 1.25 Obs.Session_rate 1 2.5 0.0;
    ev 12 1.3 Obs.Run_end n 3.0 6.5;
  |]

let test_kind_counts () =
  let counts = Analysis.kind_counts (fabricated ()) in
  let get k = try List.assoc k counts with Not_found -> 0 in
  checki "iter_start" 3 (get Obs.Iter_start);
  checki "iter_end" 3 (get Obs.Iter_end);
  checki "session_rate" 2 (get Obs.Session_rate);
  checki "absent kinds omitted" 0 (get Obs.Mst_recompute);
  checkb "sorted by wire name" true
    (let names = List.map (fun (k, _) -> Obs.kind_name k) counts in
     List.sort compare names = names)

let test_convergence_report () =
  let c = Analysis.convergence (fabricated ()) in
  checkb "run name" true (c.Analysis.run_name = Some "fab");
  checkb "session count" true (c.Analysis.n_sessions = Some 2);
  checkb "parameter" true (c.Analysis.parameter = Some 0.05);
  checki "iterations" 3 c.Analysis.iterations;
  checki "phases" 1 c.Analysis.phases;
  checki "points" 3 (Array.length c.Analysis.points);
  checkf "total flow" 6.0 c.Analysis.total_flow;
  checkb "objective" true (c.Analysis.final_objective = Some 6.5);
  checkb "run iterations" true (c.Analysis.run_iterations = Some 3.0);
  checki "rescales" 1 (Array.length c.Analysis.rescales);
  checki "demand doublings" 1 (Array.length c.Analysis.demand_doubles);
  checkf "duration" 1.3 c.Analysis.duration;
  let p = c.Analysis.points in
  checki "first point iteration" 1 p.(0).Analysis.iteration;
  checkf "first point flow" 1.0 p.(0).Analysis.flow;
  checkb "first dt measured from run_start" true
    (abs_float (p.(0).Analysis.dt -. 0.3) < 1e-12);
  checkb "second dt from previous iter_end" true
    (abs_float (p.(1).Analysis.dt -. 0.4) < 1e-12);
  checki "winning session of point 2" 1 p.(1).Analysis.session;
  checkb "final rates in slot order" true
    (c.Analysis.session_rates = [| (0, 4.0); (1, 2.5) |]);
  (* the rendering prints the objective in solve's %.2f format *)
  let txt = Analysis.render_convergence c in
  let has_sub sub s =
    let n = String.length sub and ln = String.length s in
    let rec go i = i + n <= ln && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  checkb "render prints objective: 6.50" true (has_sub "objective: 6.50" txt);
  let csv = Analysis.convergence_csv c in
  let lines = String.split_on_char '\n' (String.trim csv) in
  checki "csv: header + 3 points + 2 markers" 6 (List.length lines);
  checkb "csv header" true
    (List.hd lines = "kind,iteration,time,dt,session,value");
  checkb "csv rows keep trace order (rescale between points 1 and 2)" true
    (match lines with
    | _ :: l1 :: l2 :: _ ->
      has_sub "iter_end" l1 && has_sub "rescale" l2
    | _ -> false)

let test_span_profile () =
  let outer = Obs.Name.intern "fab.outer" in
  let inner = Obs.Name.intern "fab.inner" in
  let events =
    [|
      ev 0 0.0 Obs.Span_open outer 0.0 0.0;
      ev 1 0.1 Obs.Span_open inner 0.0 1.0;
      ev 2 0.4 Obs.Span_close inner 0.3 1.0;
      ev 3 0.5 Obs.Span_open inner 0.0 1.0;
      ev 4 0.6 Obs.Span_close inner 0.1 1.0;
      ev 5 1.0 Obs.Span_close outer 1.0 0.0;
    |]
  in
  let stats = Analysis.span_profile events in
  checki "two span names" 2 (List.length stats);
  let find name = List.find (fun s -> s.Analysis.span = name) stats in
  let o = find "fab.outer" and i = find "fab.inner" in
  checki "outer count" 1 o.Analysis.count;
  checki "inner count" 2 i.Analysis.count;
  checkb "outer total" true (abs_float (o.Analysis.total_s -. 1.0) < 1e-12);
  checkb "inner total" true (abs_float (i.Analysis.total_s -. 0.4) < 1e-12);
  checkb "outer self = total - direct children" true
    (abs_float (o.Analysis.self_s -. 0.6) < 1e-12);
  checkb "leaf self = leaf total" true
    (abs_float (i.Analysis.self_s -. i.Analysis.total_s) < 1e-12);
  checki "inner max depth" 1 i.Analysis.max_depth;
  checkb "sorted by total desc" true
    (match stats with s1 :: s2 :: _ -> s1.Analysis.total_s >= s2.Analysis.total_s | _ -> false);
  (* an orphan close (open lost to ring wraparound) still counts *)
  let orphan = Analysis.span_profile [| ev 0 0.5 Obs.Span_close inner 0.25 0.0 |] in
  (match orphan with
  | [ s ] ->
    checki "orphan close counted" 1 s.Analysis.count;
    checkb "orphan duration kept" true (abs_float (s.Analysis.total_s -. 0.25) < 1e-12)
  | _ -> Alcotest.fail "orphan close mishandled")

let test_mst_efficiency () =
  let events =
    [|
      ev 0 0.0 Obs.Mst_recompute 0 5.0 0.0;
      (* eager: 5 weight walks *)
      ev 1 0.1 Obs.Mst_recompute 0 3.0 1.0;
      (* lazy-bound run: 3 walks *)
      ev 2 0.2 Obs.Mst_lazy_skip 0 0.0 0.0;
      ev 3 0.3 Obs.Mst_lazy_skip 0 0.0 0.0;
      ev 4 0.4 Obs.Mst_recompute 1 7.0 0.0;
    |]
  in
  let r = Analysis.mst_efficiency events in
  checki "total recomputes" 3 r.Analysis.total_recomputes;
  checki "total lazy skips" 2 r.Analysis.total_lazy_skips;
  checki "total weight walks" 15 r.Analysis.total_weight_walks;
  checki "two sessions" 2 (Array.length r.Analysis.per_session);
  let s0 = r.Analysis.per_session.(0) in
  checki "s0 slot" 0 s0.Analysis.mst_session;
  checki "s0 recomputes" 2 s0.Analysis.recomputes;
  checki "s0 eager" 1 s0.Analysis.eager_runs;
  checki "s0 lazy runs" 1 s0.Analysis.lazy_runs;
  checki "s0 skips" 2 s0.Analysis.lazy_skips;
  checki "s0 walks" 8 s0.Analysis.weight_walks

let test_diff () =
  let a = fabricated () in
  let self = Analysis.diff a a in
  checkb "a trace diffs equal to itself" true self.Analysis.equal;
  checkb "counts equal" true self.Analysis.counts_equal;
  (* drop the last iteration: counts and objective drift *)
  let b = Array.sub a 0 (Array.length a - 5) in
  let d = Analysis.diff a b in
  checkb "shorter trace differs" false d.Analysis.equal;
  checkb "count deltas surface" false d.Analysis.counts_equal;
  (* same events, objective nudged: count-equal but drifting *)
  let c = Array.copy a in
  c.(12) <- ev 12 1.3 Obs.Run_end (Obs.Name.intern "fab") 3.0 6.6;
  let d2 = Analysis.diff a c in
  checkb "counts still equal" true d2.Analysis.counts_equal;
  checkb "objective drift breaks equality" false d2.Analysis.equal;
  let d3 = Analysis.diff ~obj_tol:0.1 a c in
  checkb "tolerance absorbs the drift" true d3.Analysis.equal

(* ---------- parallel streams ---------- *)

(* The acceptance contract from DESIGN.md §5 + lib/par: the JSONL
   stream of a -j 2 run equals the -j 1 stream event for event —
   same seq, kind, session and payloads — modulo timestamps (and span
   payloads, which are wall-clock durations). *)
let test_stream_parallel_deterministic () =
  let rng = Rng.create 7 in
  let topo = Waxman.generate rng { Waxman.default_params with Waxman.n = 30 } in
  let g = topo.Topology.graph in
  let mk id size =
    Session.random rng ~id ~topology_size:(Topology.n_nodes topo) ~size
      ~demand:10.0
  in
  let sessions = [| mk 0 5; mk 1 4 |] in
  let solve ~par path =
    let (r : Max_flow.result), emitted =
      Obs_stream.with_file path (fun sink ->
          Max_flow.solve ~obs:sink ~par g
            (Array.map (fun s -> Overlay.create g Overlay.Ip s) sessions)
            ~epsilon:0.05)
    in
    (r, emitted)
  in
  let signature path =
    let r = ok_exn (Obs_export.read_trace path) in
    checkb "stream parses clean" true (r.Obs_export.r_issues = []);
    checki "stream drops nothing" 0 r.Obs_export.r_dropped;
    Array.map
      (fun e ->
        let a, b =
          match e.Obs.Event.kind with
          | Obs.Span_open | Obs.Span_close -> (0.0, 0.0)
          | _ -> (e.Obs.Event.a, e.Obs.Event.b)
        in
        (e.Obs.Event.seq, Obs.kind_name e.Obs.Event.kind, e.Obs.Event.session, a, b))
      r.Obs_export.r_events
  in
  with_tmp (fun path1 ->
      with_tmp (fun path2 ->
          let r1, n1 = solve ~par:Par.serial path1 in
          let par = Par.create ~jobs:2 () in
          let r2, n2 =
            Fun.protect
              ~finally:(fun () -> Par.shutdown par)
              (fun () -> solve ~par path2)
          in
          checki "same event count" n1 n2;
          checki "same iterations" r1.Max_flow.iterations r2.Max_flow.iterations;
          checkb "identical rates" true
            (Solution.rates r1.Max_flow.solution
            = Solution.rates r2.Max_flow.solution);
          checkb "-j 2 stream = -j 1 stream modulo timestamps" true
            (signature path1 = signature path2)))

let suite =
  [
    Alcotest.test_case "schema-1 round trip" `Quick test_roundtrip_schema1;
    Alcotest.test_case "schema-2 stream round trip" `Quick test_roundtrip_schema2;
    Alcotest.test_case "ring-wraparound read" `Quick test_wraparound_read;
    Alcotest.test_case "reader strictness" `Quick test_reader_strictness;
    Alcotest.test_case "reader error-path corpus" `Quick
      test_reader_error_corpus;
    Alcotest.test_case "kind counts" `Quick test_kind_counts;
    Alcotest.test_case "convergence report" `Quick test_convergence_report;
    Alcotest.test_case "span profile" `Quick test_span_profile;
    Alcotest.test_case "mst efficiency" `Quick test_mst_efficiency;
    Alcotest.test_case "two-trace diff" `Quick test_diff;
    Alcotest.test_case "parallel stream determinism" `Quick
      test_stream_parallel_deterministic;
  ]
