(* Obs.Histogram: the log-bucketed latency sketch behind the engine's
   telemetry.  Pins the documented quantile relative-error bound across
   magnitudes, exact merge semantics, the zero/NaN bucket, registry
   idempotence, and domain-safety of concurrent recording. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf = Alcotest.(check (float 0.0))  (* exact equality *)

(* the documented bound: representatives sit at the geometric midpoint
   of a gamma = 2^(1/16) bucket, so any estimate is within
   2^(1/32) - 1 < 2.2% of the true sample *)
let rel_bound = 0.022

let close_rel what expect got =
  if Float.abs (got -. expect) > rel_bound *. Float.abs expect then
    Alcotest.failf "%s: %.17g not within %.1f%% of %.17g" what got
      (rel_bound *. 100.0) expect

(* the same nearest-rank convention Histogram.quantile documents *)
let rank p n = int_of_float ((p *. float_of_int (n - 1)) +. 0.5)

let probe_ps = [ 0.0; 0.1; 0.25; 0.5; 0.75; 0.9; 0.99; 1.0 ]

(* --- quantile error across magnitudes ---------------------------------- *)

let test_quantile_error () =
  let n = 5000 in
  (* deterministic log-uniform spread across 40 octaves (~1e-6 .. 1e6) *)
  let values =
    Array.init n (fun i ->
        Float.exp2 (-20.0 +. (40.0 *. float_of_int i /. float_of_int (n - 1))))
  in
  let h = Obs.Histogram.create "test_hist.err" in
  Array.iter (Obs.Histogram.record h) values;
  checki "every sample counted" n (Obs.Histogram.count h);
  let sorted = Array.copy values in
  Array.sort compare sorted;
  List.iter
    (fun p ->
      let exact = sorted.(rank p n) in
      close_rel
        (Printf.sprintf "p%.0f across magnitudes" (p *. 100.0))
        exact
        (Obs.Histogram.quantile h p))
    probe_ps;
  (* the fixed-point sum is exact to ~1e-9 per sample *)
  let exact_sum = Array.fold_left ( +. ) 0.0 values in
  checkb "sum within fixed-point resolution" true
    (Float.abs (Obs.Histogram.sum h -. exact_sum)
    <= float_of_int n *. 1e-9)

let test_quantile_millisecond_range () =
  (* the regime the engine actually records: fractions of a second *)
  let n = 1000 in
  let values =
    Array.init n (fun i -> 1e-4 +. (float_of_int i *. 3.7e-5))
  in
  let h = Obs.Histogram.create "test_hist.ms" in
  Array.iter (Obs.Histogram.record h) values;
  let sorted = Array.copy values in
  Array.sort compare sorted;
  List.iter
    (fun p ->
      close_rel
        (Printf.sprintf "p%.0f in the ms regime" (p *. 100.0))
        sorted.(rank p n)
        (Obs.Histogram.quantile h p))
    probe_ps

(* --- merge -------------------------------------------------------------- *)

let test_merge () =
  let whole = Obs.Histogram.create "test_hist.whole" in
  let evens = Obs.Histogram.create "test_hist.evens" in
  let odds = Obs.Histogram.create "test_hist.odds" in
  for i = 0 to 999 do
    let v = 0.003 *. float_of_int (i + 1) in
    Obs.Histogram.record whole v;
    Obs.Histogram.record (if i mod 2 = 0 then evens else odds) v
  done;
  Obs.Histogram.record whole 0.0;
  Obs.Histogram.record odds 0.0;
  Obs.Histogram.merge ~into:evens odds;
  checki "merged count = whole count" (Obs.Histogram.count whole)
    (Obs.Histogram.count evens);
  (* same multiset of fixed-point increments: sums agree exactly *)
  checkf "merged sum = whole sum (bit-exact)" (Obs.Histogram.sum whole)
    (Obs.Histogram.sum evens);
  List.iter
    (fun p ->
      checkf
        (Printf.sprintf "merged p%.0f = whole p%.0f" (p *. 100.0) (p *. 100.0))
        (Obs.Histogram.quantile whole p)
        (Obs.Histogram.quantile evens p))
    probe_ps;
  (* self-merge must not double the contents *)
  let before = Obs.Histogram.count evens in
  Obs.Histogram.merge ~into:evens evens;
  checki "self-merge is a no-op" before (Obs.Histogram.count evens)

(* --- edge cases --------------------------------------------------------- *)

let test_empty () =
  let h = Obs.Histogram.create "test_hist.empty" in
  checki "empty count" 0 (Obs.Histogram.count h);
  checkf "empty sum" 0.0 (Obs.Histogram.sum h);
  checkf "empty quantile" 0.0 (Obs.Histogram.quantile h 0.5);
  let s = Obs.Histogram.snapshot h in
  checki "empty snapshot count" 0 s.Obs.Histogram.s_count;
  checkb "empty snapshot has no buckets" true (s.Obs.Histogram.s_buckets = []);
  checkb "p out of range raises" true
    (try
       ignore (Obs.Histogram.quantile h 1.5);
       false
     with Invalid_argument _ -> true)

let test_single_sample () =
  let h = Obs.Histogram.create "test_hist.single" in
  Obs.Histogram.record h 3.7;
  checki "one sample" 1 (Obs.Histogram.count h);
  List.iter
    (fun p ->
      close_rel "single-sample quantile" 3.7 (Obs.Histogram.quantile h p))
    probe_ps;
  let s = Obs.Histogram.snapshot h in
  checkf "snapshot min = max for one sample" s.Obs.Histogram.s_min
    s.Obs.Histogram.s_max;
  close_rel "snapshot min near the sample" 3.7 s.Obs.Histogram.s_min

let test_zeros_bucket () =
  let h = Obs.Histogram.create "test_hist.zeros" in
  Obs.Histogram.record h 0.0;
  Obs.Histogram.record h (-5.0);
  Obs.Histogram.record h Float.nan;
  Obs.Histogram.record h 2.0;
  checki "zeros and the positive sample all counted" 4
    (Obs.Histogram.count h);
  let s = Obs.Histogram.snapshot h in
  checki "three in the zeros bucket" 3 s.Obs.Histogram.s_zeros;
  checkf "zeros dominate the median" 0.0 (Obs.Histogram.quantile h 0.5);
  close_rel "top quantile sees the positive sample" 2.0
    (Obs.Histogram.quantile h 1.0);
  checkf "snapshot min is 0 when the zeros bucket is occupied" 0.0
    s.Obs.Histogram.s_min;
  Obs.Histogram.reset h;
  checki "reset empties" 0 (Obs.Histogram.count h)

let test_snapshot_structure () =
  let h = Obs.Histogram.create "test_hist.snap" in
  for i = 1 to 100 do
    Obs.Histogram.record h (float_of_int i)
  done;
  let s = Obs.Histogram.snapshot h in
  checki "snapshot count" 100 s.Obs.Histogram.s_count;
  let bucket_total =
    List.fold_left
      (fun acc (b : Obs.Histogram.bucket) -> acc + b.Obs.Histogram.b_count)
      0 s.Obs.Histogram.s_buckets
  in
  checki "bucket counts account for every positive sample" 100 bucket_total;
  List.iter
    (fun (b : Obs.Histogram.bucket) ->
      checkb "bucket bounds ordered" true
        (b.Obs.Histogram.b_lo < b.Obs.Histogram.b_hi);
      checkb "bucket non-empty in snapshot" true (b.Obs.Histogram.b_count > 0))
    s.Obs.Histogram.s_buckets;
  let ascending =
    let rec go = function
      | (a : Obs.Histogram.bucket) :: (b : Obs.Histogram.bucket) :: rest ->
        a.Obs.Histogram.b_hi <= b.Obs.Histogram.b_lo +. 1e-12 && go (b :: rest)
      | _ -> true
    in
    go s.Obs.Histogram.s_buckets
  in
  checkb "buckets ascending and disjoint" true ascending;
  close_rel "snapshot min near 1" 1.0 s.Obs.Histogram.s_min;
  close_rel "snapshot max near 100" 100.0 s.Obs.Histogram.s_max

(* --- registry ----------------------------------------------------------- *)

let test_registry () =
  let h = Obs.Histogram.make ~doc:"test histogram" "test_hist.reg" in
  let h' = Obs.Histogram.make "test_hist.reg" in
  checkb "make is idempotent by name (same cell)" true (h == h');
  Obs.Histogram.reset h;
  Obs.Histogram.record h 1.0;
  checki "the alias sees the same contents" 1 (Obs.Histogram.count h');
  (match Obs.Registry.find_histogram "test_hist.reg" with
  | Some found -> checkb "find_histogram returns the cell" true (found == h)
  | None -> Alcotest.fail "find_histogram missed a registered histogram");
  checkb "find_histogram does not create" true
    (Obs.Registry.find_histogram "test_hist.never_created" = None);
  let listed =
    List.filter
      (fun (n, _, _) -> n = "test_hist.reg")
      (Obs.Registry.histograms ())
  in
  (match listed with
  | [ (_, doc, (s : Obs.Histogram.snapshot)) ] ->
    Alcotest.(check string) "doc kept from first make" "test histogram" doc;
    checki "registry snapshots the live contents" 1 s.Obs.Histogram.s_count
  | _ -> Alcotest.fail "registry listing missing/duplicated the histogram");
  let names = List.map (fun (n, _, _) -> n) (Obs.Registry.histograms ()) in
  checkb "registry listing is sorted" true (List.sort compare names = names);
  (* create (unregistered) never enters the registry *)
  let anon = Obs.Histogram.create "test_hist.reg" in
  checkb "create does not replace the registered cell" true
    (Obs.Registry.find_histogram "test_hist.reg" = Some h);
  checkb "create returns a distinct cell" true (not (anon == h));
  Obs.Registry.reset_all ();
  checki "reset_all empties registered histograms" 0 (Obs.Histogram.count h)

(* --- domain safety ------------------------------------------------------ *)

let test_parallel_record () =
  let h = Obs.Histogram.create "test_hist.par" in
  let n = 20_000 in
  let par = Par.create ~jobs:4 () in
  Fun.protect
    ~finally:(fun () -> Par.shutdown par)
    (fun () ->
      Par.parallel_for par ~n (fun ~worker:_ ~lo ~hi ->
          for i = lo to hi - 1 do
            Obs.Histogram.record h (1e-3 *. float_of_int (i + 1))
          done));
  checki "no lost updates under 4 domains" n (Obs.Histogram.count h);
  (* a serially-built twin over the same multiset: atomics commute, so
     count, sum and every quantile agree exactly *)
  let serial = Obs.Histogram.create "test_hist.par_serial" in
  for i = 0 to n - 1 do
    Obs.Histogram.record serial (1e-3 *. float_of_int (i + 1))
  done;
  checkf "sum agrees bit-exactly with serial" (Obs.Histogram.sum serial)
    (Obs.Histogram.sum h);
  List.iter
    (fun p ->
      checkf "quantile agrees exactly with serial"
        (Obs.Histogram.quantile serial p)
        (Obs.Histogram.quantile h p))
    probe_ps

let suite =
  [
    Alcotest.test_case "quantile error bound across magnitudes" `Quick
      test_quantile_error;
    Alcotest.test_case "quantile error bound (ms regime)" `Quick
      test_quantile_millisecond_range;
    Alcotest.test_case "merge is exact" `Quick test_merge;
    Alcotest.test_case "empty histogram" `Quick test_empty;
    Alcotest.test_case "single sample" `Quick test_single_sample;
    Alcotest.test_case "zeros bucket" `Quick test_zeros_bucket;
    Alcotest.test_case "snapshot structure" `Quick test_snapshot_structure;
    Alcotest.test_case "registry idempotence and reset" `Quick test_registry;
    Alcotest.test_case "parallel recording is lossless" `Quick
      test_parallel_record;
  ]
