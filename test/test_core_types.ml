(* Tests for Session, Otree, Overlay, Solution, Metrics. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-9))
let checkf6 = Alcotest.(check (float 1e-6))

(* --- Session -------------------------------------------------------------- *)

let test_session_create () =
  let s = Session.create ~id:0 ~members:[| 4; 7; 9 |] ~demand:2.0 in
  checki "size" 3 (Session.size s);
  checki "receivers" 2 (Session.receivers s);
  checki "source" 4 (Session.source s)

let test_session_validation () =
  Alcotest.check_raises "too small"
    (Invalid_argument "Session.create: need at least 2 members") (fun () ->
      ignore (Session.create ~id:0 ~members:[| 1 |] ~demand:1.0));
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Session.create: duplicate member") (fun () ->
      ignore (Session.create ~id:0 ~members:[| 1; 1 |] ~demand:1.0));
  Alcotest.check_raises "bad demand"
    (Invalid_argument "Session.create: demand must be positive") (fun () ->
      ignore (Session.create ~id:0 ~members:[| 1; 2 |] ~demand:0.0))

let test_session_random_distinct () =
  let rng = Rng.create 1 in
  for _ = 1 to 20 do
    let s = Session.random rng ~id:0 ~topology_size:30 ~size:8 ~demand:1.0 in
    checki "size" 8 (Session.size s)
  done

let test_session_replicate () =
  let rng = Rng.create 2 in
  let base = Session.random_batch rng ~topology_size:30 ~count:2 ~size:4 ~demand:5.0 in
  let reps = Session.replicate base ~copies:3 ~demand:1.0 in
  checki "count" 6 (Array.length reps);
  checkf "demand overridden" 1.0 reps.(0).Session.demand;
  (* replica i mirrors original (i mod 2) *)
  Alcotest.(check (array int)) "members preserved" base.(1).Session.members
    reps.(3).Session.members;
  checki "ids dense" 5 reps.(5).Session.id;
  checki "max size" 4 (Session.max_size reps)

(* --- Otree ------------------------------------------------------------------ *)

(* physical path graph 0-1-2-3 with capacities 10, 4, 8 *)
let phys () = Graph.of_edges ~n:4 [ (0, 1, 10.0); (1, 2, 4.0); (2, 3, 8.0) ]

let route_03 () = Route.make ~src:0 ~dst:3 [| 0; 1; 2 |]
let route_02 () = Route.make ~src:0 ~dst:2 [| 0; 1 |]

let test_otree_usage_counts () =
  (* overlay tree on member slots {0,1,2} = vertices {0,3,2}:
     overlay edges (0,1)->route 0..3 and (0,2)->route 0..2.
     physical edges 0 and 1 are shared by both routes: n_e = 2. *)
  let t =
    Otree.build ~session_id:0
      ~pairs:[| (0, 1); (0, 2) |]
      ~routes:[| route_03 (); route_02 () |]
  in
  checki "n_e shared edge 0" 2 (Otree.n_e t 0);
  checki "n_e shared edge 1" 2 (Otree.n_e t 1);
  checki "n_e lone edge 2" 1 (Otree.n_e t 2);
  checki "n_e absent" 0 (Otree.n_e t 99)

let test_otree_weight_bottleneck () =
  let g = phys () in
  let t =
    Otree.build ~session_id:0
      ~pairs:[| (0, 1); (0, 2) |]
      ~routes:[| route_03 (); route_02 () |]
  in
  (* weight under unit lengths = total physical traversals = 3 + 2 *)
  checkf "weight" 5.0 (Otree.weight t ~length:Dijkstra.hop_length);
  (* bottleneck: edge 1 has capacity 4 used twice -> 2.0 *)
  checkf "bottleneck" 2.0 (Otree.bottleneck t ~capacity:(Graph.capacity g))

let test_otree_canonicalization () =
  let a =
    Otree.build ~session_id:0
      ~pairs:[| (2, 0); (1, 0) |]
      ~routes:[| route_02 (); route_03 () |]
  in
  let b =
    Otree.build ~session_id:0
      ~pairs:[| (0, 1); (0, 2) |]
      ~routes:[| route_03 (); route_02 () |]
  in
  Alcotest.(check string) "same key" (Otree.key b) (Otree.key a);
  Alcotest.(check string) "same shape key" (Otree.shape_key b) (Otree.shape_key a)

let test_otree_key_distinguishes_routes () =
  let alt_route_03 = Route.make ~src:0 ~dst:3 [| 2; 1; 0 |] in
  ignore alt_route_03;
  let a =
    Otree.build ~session_id:0 ~pairs:[| (0, 1) |] ~routes:[| route_03 () |]
  in
  let b =
    Otree.build ~session_id:0 ~pairs:[| (0, 1) |]
      ~routes:[| Route.make ~src:0 ~dst:3 [| 0; 1 |] |]
  in
  checkb "different realization, different key" false (Otree.key a = Otree.key b);
  Alcotest.(check string) "same shape" (Otree.shape_key a) (Otree.shape_key b)

let test_otree_spanning () =
  let t =
    Otree.build ~session_id:0
      ~pairs:[| (0, 1); (0, 2) |]
      ~routes:[| route_03 (); route_02 () |]
  in
  checkb "spans 3 members" true (Otree.is_spanning t ~n_members:3);
  checkb "not 4 members" false (Otree.is_spanning t ~n_members:4)

(* --- Overlay ------------------------------------------------------------------ *)

let small_topo () =
  let rng = Rng.create 11 in
  Waxman.generate rng { Waxman.default_params with n = 30 }

let test_overlay_mst_is_minimal () =
  (* brute-force check: the minimum overlay spanning tree has minimum
     weight among all enumerated overlay trees *)
  let topo = small_topo () in
  let g = topo.Topology.graph in
  let rng = Rng.create 12 in
  let s = Session.random rng ~id:0 ~topology_size:30 ~size:5 ~demand:1.0 in
  let overlay = Overlay.create g Overlay.Ip s in
  let lens = Array.init (Graph.n_edges g) (fun i -> 0.3 +. float_of_int ((i * 7) mod 5)) in
  let length i = lens.(i) in
  let mst = Overlay.min_spanning_tree overlay ~length in
  let w_mst = Otree.weight mst ~length in
  List.iter
    (fun tree_pairs ->
      let t = Overlay.tree_of_pairs overlay ~pairs:(Array.of_list tree_pairs) ~length in
      checkb "mst minimal" true (Otree.weight t ~length >= w_mst -. 1e-9))
    (Prufer.enumerate 5)

let test_overlay_ops_counter () =
  let topo = small_topo () in
  let g = topo.Topology.graph in
  let rng = Rng.create 13 in
  let s = Session.random rng ~id:0 ~topology_size:30 ~size:4 ~demand:1.0 in
  let overlay = Overlay.create g Overlay.Ip s in
  checki "starts at 0" 0 (Overlay.mst_operations overlay);
  ignore (Overlay.min_spanning_tree overlay ~length:Dijkstra.hop_length);
  ignore (Overlay.min_spanning_tree overlay ~length:Dijkstra.hop_length);
  checki "counts" 2 (Overlay.mst_operations overlay);
  Overlay.reset_mst_operations overlay;
  checki "reset" 0 (Overlay.mst_operations overlay)

let test_overlay_modes_agree_on_uniform_lengths () =
  (* with uniform lengths the dynamic shortest paths are hop-shortest,
     so both modes give trees of equal weight *)
  let topo = small_topo () in
  let g = topo.Topology.graph in
  let rng = Rng.create 14 in
  let s = Session.random rng ~id:0 ~topology_size:30 ~size:5 ~demand:1.0 in
  let ip = Overlay.create g Overlay.Ip s in
  let arb = Overlay.create g Overlay.Arbitrary s in
  let t_ip = Overlay.min_spanning_tree ip ~length:Dijkstra.hop_length in
  let t_arb = Overlay.min_spanning_tree arb ~length:Dijkstra.hop_length in
  checkf6 "same weight" (Otree.weight t_ip ~length:Dijkstra.hop_length)
    (Otree.weight t_arb ~length:Dijkstra.hop_length)

let test_overlay_tree_spans () =
  let topo = small_topo () in
  let g = topo.Topology.graph in
  let rng = Rng.create 15 in
  let s = Session.random rng ~id:0 ~topology_size:30 ~size:6 ~demand:1.0 in
  let overlay = Overlay.create g Overlay.Ip s in
  let t = Overlay.min_spanning_tree overlay ~length:Dijkstra.hop_length in
  checkb "spanning" true (Otree.is_spanning t ~n_members:6);
  (* every route is a valid physical path *)
  Array.iter
    (fun r -> checkb "route valid" true (Route.is_valid g r))
    t.Otree.routes

let test_overlay_with_session_shares_routes () =
  let topo = small_topo () in
  let g = topo.Topology.graph in
  let rng = Rng.create 16 in
  let s = Session.random rng ~id:0 ~topology_size:30 ~size:5 ~demand:1.0 in
  let overlay = Overlay.create g Overlay.Ip s in
  let replica = Session.create ~id:7 ~members:s.Session.members ~demand:2.0 in
  let shared = Overlay.with_session overlay replica in
  (* identical member set -> identical trees, fresh op counter, new id *)
  let t1 = Overlay.min_spanning_tree overlay ~length:Dijkstra.hop_length in
  let t2 = Overlay.min_spanning_tree shared ~length:Dijkstra.hop_length in
  Alcotest.(check string) "same shape" (Otree.shape_key t1) (Otree.shape_key t2);
  checki "replica session id" 7 t2.Otree.session_id;
  checki "counters independent" 1 (Overlay.mst_operations shared);
  (* different members rejected *)
  let other = Session.random rng ~id:9 ~topology_size:30 ~size:5 ~demand:1.0 in
  checkb "member mismatch rejected" true
    (try
       ignore (Overlay.with_session overlay other);
       false
     with Invalid_argument _ -> true)

(* --- Solution ------------------------------------------------------------------ *)

let two_sessions () =
  let g = phys () in
  let s0 = Session.create ~id:0 ~members:[| 0; 3 |] ~demand:1.0 in
  let s1 = Session.create ~id:1 ~members:[| 0; 2; 3 |] ~demand:2.0 in
  (g, [| s0; s1 |])

let tree_for sid pairs routes = Otree.build ~session_id:sid ~pairs ~routes

let test_solution_accumulates () =
  let _, sessions = two_sessions () in
  let sol = Solution.create sessions in
  let t = tree_for 0 [| (0, 1) |] [| route_03 () |] in
  Solution.add sol t 2.0;
  Solution.add sol t 3.0;
  checkf "rates accumulate on same tree" 5.0 (Solution.session_rate sol 0);
  checki "one distinct tree" 1 (Solution.n_trees sol 0);
  checki "other session empty" 0 (Solution.n_trees sol 1)

let test_solution_throughput_weighted_by_receivers () =
  let _, sessions = two_sessions () in
  let sol = Solution.create sessions in
  Solution.add sol (tree_for 0 [| (0, 1) |] [| route_03 () |]) 4.0;
  Solution.add sol
    (tree_for 1 [| (0, 1); (1, 2) |]
       [| route_02 (); Route.make ~src:2 ~dst:3 [| 2 |] |])
    3.0;
  (* session 0 has 1 receiver, session 1 has 2 *)
  checkf "throughput" (4.0 +. 6.0) (Solution.overall_throughput sol);
  checkf "concurrent ratio" (3.0 /. 2.0) (Solution.concurrent_ratio sol);
  checkf "min rate" 3.0 (Solution.min_rate sol)

let test_solution_link_load_and_congestion () =
  let g, sessions = two_sessions () in
  let sol = Solution.create sessions in
  Solution.add sol (tree_for 0 [| (0, 1) |] [| route_03 () |]) 2.0;
  let loads = Solution.link_load sol g in
  checkf "edge0 load" 2.0 loads.(0);
  checkf "edge1 load" 2.0 loads.(1);
  (* capacity of edge 1 is 4 -> congestion 0.5 *)
  checkf "congestion" 0.5 (Solution.max_congestion sol g);
  checkb "feasible" true (Solution.is_feasible sol g ~tol:0.0);
  Solution.scale sol 3.0;
  checkf "scaled congestion" 1.5 (Solution.max_congestion sol g);
  checkb "infeasible" false (Solution.is_feasible sol g ~tol:0.0)

let test_solution_scale_session () =
  let _, sessions = two_sessions () in
  let sol = Solution.create sessions in
  Solution.add sol (tree_for 0 [| (0, 1) |] [| route_03 () |]) 2.0;
  Solution.add sol
    (tree_for 1 [| (0, 1); (1, 2) |]
       [| route_02 (); Route.make ~src:2 ~dst:3 [| 2 |] |])
    2.0;
  Solution.scale_session sol 0 0.5;
  checkf "session 0 scaled" 1.0 (Solution.session_rate sol 0);
  checkf "session 1 untouched" 2.0 (Solution.session_rate sol 1)

let test_solution_copy_merge () =
  let _, sessions = two_sessions () in
  let sol = Solution.create sessions in
  Solution.add sol (tree_for 0 [| (0, 1) |] [| route_03 () |]) 2.0;
  let dup = Solution.copy sol in
  Solution.scale dup 2.0;
  checkf "copy independent" 2.0 (Solution.session_rate sol 0);
  checkf "copy scaled" 4.0 (Solution.session_rate dup 0);
  Solution.merge_from sol dup;
  checkf "merged" 6.0 (Solution.session_rate sol 0)

let test_solution_rejects_unknown_session () =
  let _, sessions = two_sessions () in
  let sol = Solution.create sessions in
  let foreign = tree_for 9 [| (0, 1) |] [| route_03 () |] in
  Alcotest.check_raises "unknown session"
    (Invalid_argument "Solution.add: tree from an unknown session") (fun () ->
      Solution.add sol foreign 1.0)

(* --- Metrics ------------------------------------------------------------------- *)

let test_metrics_utilization () =
  let g, sessions = two_sessions () in
  let sol = Solution.create sessions in
  Solution.add sol (tree_for 0 [| (0, 1) |] [| route_03 () |]) 2.0;
  let u = Metrics.link_utilization sol g ~edges:[| 0; 1; 2 |] in
  checkf "edge0" 0.2 u.(0);
  checkf "edge1" 0.5 u.(1);
  checkf "edge2" 0.25 u.(2);
  let curve = Metrics.utilization_curve sol g ~edges:[| 0; 1; 2 |] in
  checkf "descending head" 0.5 curve.(0).Cdf.y

let test_metrics_aggregation () =
  let g, _ = two_sessions () in
  ignore g;
  let replicas =
    [|
      Session.create ~id:0 ~members:[| 0; 3 |] ~demand:1.0;
      Session.create ~id:1 ~members:[| 0; 3 |] ~demand:1.0;
      Session.create ~id:2 ~members:[| 0; 3 |] ~demand:1.0;
    |]
  in
  let sol = Solution.create replicas in
  Solution.add sol (tree_for 0 [| (0, 1) |] [| route_03 () |]) 1.0;
  Solution.add sol (tree_for 1 [| (0, 1) |] [| route_03 () |]) 2.0;
  Solution.add sol (tree_for 2 [| (0, 1) |] [| route_03 () |]) 4.0;
  (* slots 0 and 2 belong to original 0; slot 1 to original 1 *)
  let rates =
    Metrics.aggregate_replicated_rates sol ~original_of_slot:[| 0; 1; 0 |]
      ~originals:2
  in
  checkf "original 0" 5.0 rates.(0);
  checkf "original 1" 2.0 rates.(1);
  let distinct =
    Metrics.aggregate_replicated_trees sol ~original_of_slot:[| 0; 1; 0 |]
      ~originals:2
  in
  (* replicas of original 0 picked the same physical tree -> 1 distinct *)
  checki "distinct trees folded" 1 distinct.(0);
  checki "distinct trees other" 1 distinct.(1)

let test_metrics_edges_per_node () =
  let topo = small_topo () in
  let g = topo.Topology.graph in
  let rng = Rng.create 21 in
  let sessions =
    Session.random_batch rng ~topology_size:30 ~count:2 ~size:5 ~demand:1.0
  in
  let overlays = Array.map (Overlay.create g Overlay.Ip) sessions in
  let epn = Metrics.edges_per_node overlays in
  checkb "positive" true (epn > 0.0);
  checkb "bounded by m/members" true
    (epn <= float_of_int (Graph.n_edges g) /. 10.0 +. 1e-9)

let suite =
  [
    Alcotest.test_case "session create" `Quick test_session_create;
    Alcotest.test_case "session validation" `Quick test_session_validation;
    Alcotest.test_case "session random distinct" `Quick test_session_random_distinct;
    Alcotest.test_case "session replicate" `Quick test_session_replicate;
    Alcotest.test_case "otree usage counts" `Quick test_otree_usage_counts;
    Alcotest.test_case "otree weight/bottleneck" `Quick test_otree_weight_bottleneck;
    Alcotest.test_case "otree canonicalization" `Quick test_otree_canonicalization;
    Alcotest.test_case "otree key vs routes" `Quick test_otree_key_distinguishes_routes;
    Alcotest.test_case "otree spanning" `Quick test_otree_spanning;
    Alcotest.test_case "overlay mst minimal" `Quick test_overlay_mst_is_minimal;
    Alcotest.test_case "overlay ops counter" `Quick test_overlay_ops_counter;
    Alcotest.test_case "overlay modes on uniform lengths" `Quick
      test_overlay_modes_agree_on_uniform_lengths;
    Alcotest.test_case "overlay tree spans" `Quick test_overlay_tree_spans;
    Alcotest.test_case "overlay with_session" `Quick test_overlay_with_session_shares_routes;
    Alcotest.test_case "solution accumulates" `Quick test_solution_accumulates;
    Alcotest.test_case "solution throughput" `Quick
      test_solution_throughput_weighted_by_receivers;
    Alcotest.test_case "solution load/congestion" `Quick
      test_solution_link_load_and_congestion;
    Alcotest.test_case "solution scale session" `Quick test_solution_scale_session;
    Alcotest.test_case "solution copy/merge" `Quick test_solution_copy_merge;
    Alcotest.test_case "solution unknown session" `Quick
      test_solution_rejects_unknown_session;
    Alcotest.test_case "metrics utilization" `Quick test_metrics_utilization;
    Alcotest.test_case "metrics aggregation" `Quick test_metrics_aggregation;
    Alcotest.test_case "metrics edges per node" `Quick test_metrics_edges_per_node;
  ]
