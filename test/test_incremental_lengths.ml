(* Property tests for the incremental overlay-length engine: after N
   random multiplicative length updates plus renormalizations pushed
   through [Overlay.notify_length_update] / [notify_rescale], the cached
   overlay weights and the chosen MST must match a from-scratch
   [Route.weight] recomputation — in both Ip and Arbitrary modes. *)

let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)
let checkf = Alcotest.(check (float 0.0))  (* exact equality *)

(* Two mathematically equal sums computed in different association
   orders (per-distinct-edge n_e * d_e vs per-route folds) may differ in
   the last ulps; everything computed through the same fold must be
   exactly equal and is checked with [checkf] instead. *)
let check_close msg expected actual =
  let scale = Float.max 1.0 (Float.max (abs_float expected) (abs_float actual)) in
  checkb
    (Printf.sprintf "%s (%.17g vs %.17g)" msg expected actual)
    true
    (abs_float (expected -. actual) <= 1e-9 *. scale)

let instance seed =
  let rng = Rng.create seed in
  let topo = Waxman.generate rng { Waxman.default_params with Waxman.n = 40 } in
  let g = topo.Topology.graph in
  let size = 5 + (seed mod 3) in
  let session =
    Session.random rng ~id:0 ~topology_size:(Topology.n_nodes topo) ~size
      ~demand:10.0
  in
  (rng, g, session)

(* Sum of fresh [Route.weight]s over the tree's routes — the from-scratch
   value the engine must reproduce exactly. *)
let scratch_tree_weight tree ~length =
  Array.fold_left
    (fun acc r -> acc +. Route.weight r ~length)
    0.0 tree.Otree.routes

(* Drive one random update schedule against a notified (incremental)
   overlay and a scratch overlay, asserting identical trees throughout.

   [cross_check] validates every cached weight on every call (but
   disables the monotone Prim skip, which by design leaves non-tree
   weights stale).  [monotone] announces updates through
   [notify_length_increase] (all growths here are >= 1), exercising the
   skip; otherwise the generic [notify_length_update] path — and, with
   [decreases], update factors that may shrink a length — is tested. *)
let run_ip_schedule ~cross_check ~monotone ?(decreases = false) seed =
  let rng, g, session = instance seed in
  let inc = Overlay.create g Overlay.Ip session in
  let scr = Overlay.create g Overlay.Ip session in
  let m = Graph.n_edges g in
  let lens = Array.make m 1.0 in
  let length id = lens.(id) in
  Overlay.begin_incremental inc;
  let was_cross_check = Overlay.cross_check_enabled () in
  Overlay.set_cross_check cross_check;
  Fun.protect
    ~finally:(fun () ->
      Overlay.set_cross_check was_cross_check;
      Overlay.end_incremental inc)
    (fun () ->
      for step = 1 to 40 do
        (* a handful of multiplicative updates, like one FPTAS iteration *)
        let touched = 1 + Rng.int rng 6 in
        for _ = 1 to touched do
          let e = Rng.int rng m in
          let factor =
            if decreases then 0.25 +. Rng.float rng 2.0
            else 1.0 +. Rng.float rng 1.5
          in
          lens.(e) <- lens.(e) *. factor;
          if monotone then Overlay.notify_length_increase inc e
          else Overlay.notify_length_update inc e
        done;
        (* occasional global renormalization, as the solvers do *)
        if step mod 9 = 0 then begin
          for e = 0 to m - 1 do
            lens.(e) <- lens.(e) *. 0.125
          done;
          Overlay.notify_rescale inc
        end;
        (* cross-check mode already validates every cached weight against
           a fresh Route.weight inside this call; it raises on mismatch *)
        let t_inc = Overlay.min_spanning_tree inc ~length in
        let t_scr = Overlay.min_spanning_tree scr ~length in
        checks
          (Printf.sprintf "seed %d step %d: same tree" seed step)
          (Otree.key t_scr) (Otree.key t_inc);
        checkf
          (Printf.sprintf "seed %d step %d: same tree weight" seed step)
          (Otree.weight t_scr ~length)
          (Otree.weight t_inc ~length);
        check_close
          (Printf.sprintf "seed %d step %d: tree weight vs scratch" seed step)
          (scratch_tree_weight t_scr ~length)
          (Otree.weight t_inc ~length)
      done;
      (* the engine must also have done strictly less re-weighing *)
      checkb
        (Printf.sprintf "seed %d: fewer weight ops (%d < %d)" seed
           (Overlay.weight_operations inc)
           (Overlay.weight_operations scr))
        true
        (Overlay.weight_operations inc < Overlay.weight_operations scr))

let test_ip_incremental_matches_scratch () =
  List.iter
    (run_ip_schedule ~cross_check:true ~monotone:false)
    [ 1; 2; 3; 7; 11 ]

let test_ip_monotone_skip_matches_scratch () =
  List.iter (run_ip_schedule ~cross_check:false ~monotone:true) [ 1; 2; 3; 7; 11 ]

let test_ip_decreasing_updates_match_scratch () =
  List.iter
    (run_ip_schedule ~cross_check:false ~monotone:false ~decreases:true)
    [ 1; 2; 3 ]

(* Arbitrary mode has no weight cache, but shares the reusable Dijkstra
   workspace path: repeated snapshots must keep producing the same trees
   as an independent context, and tree weights must equal fresh
   Route.weight sums. *)
let run_arbitrary_schedule seed =
  let rng, g, session = instance seed in
  let o1 = Overlay.create g Overlay.Arbitrary session in
  let o2 = Overlay.create g Overlay.Arbitrary session in
  let m = Graph.n_edges g in
  let lens = Array.make m 1.0 in
  let length id = lens.(id) in
  for step = 1 to 15 do
    let touched = 1 + Rng.int rng 6 in
    for _ = 1 to touched do
      let e = Rng.int rng m in
      lens.(e) <- lens.(e) *. (1.0 +. Rng.float rng 1.5)
    done;
    if step mod 6 = 0 then
      for e = 0 to m - 1 do
        lens.(e) <- lens.(e) *. 0.125
      done;
    let t1 = Overlay.min_spanning_tree o1 ~length in
    let t2 = Overlay.min_spanning_tree o2 ~length in
    checks
      (Printf.sprintf "seed %d step %d: same arbitrary tree" seed step)
      (Otree.key t1) (Otree.key t2);
    checkf
      (Printf.sprintf "seed %d step %d: same arbitrary weight" seed step)
      (Otree.weight t1 ~length) (Otree.weight t2 ~length);
    check_close
      (Printf.sprintf "seed %d step %d: arbitrary weight vs scratch" seed step)
      (scratch_tree_weight t1 ~length)
      (Otree.weight t1 ~length)
  done

let test_arbitrary_workspace_matches_scratch () =
  List.iter run_arbitrary_schedule [ 1; 4; 9 ]

(* A missed notification must be caught by the cross-check mode. *)
let test_cross_check_catches_missed_notification () =
  let _rng, g, session = instance 5 in
  let o = Overlay.create g Overlay.Ip session in
  let m = Graph.n_edges g in
  let lens = Array.make m 1.0 in
  let length id = lens.(id) in
  Overlay.begin_incremental o;
  let was = Overlay.cross_check_enabled () in
  Overlay.set_cross_check true;
  Fun.protect
    ~finally:(fun () ->
      Overlay.set_cross_check was;
      Overlay.end_incremental o)
    (fun () ->
      ignore (Overlay.min_spanning_tree o ~length);
      (* mutate a covered edge without notifying *)
      let covered = Overlay.covered_edges o in
      lens.(covered.(0)) <- 42.0;
      let raised =
        try
          ignore (Overlay.min_spanning_tree o ~length);
          false
        with Failure _ -> true
      in
      checkb "cross-check detects stale cache" true raised)

(* The solvers must produce identical output with the engine on or off. *)
let test_solver_output_invariant () =
  let _rng, g, session = instance 13 in
  let solve ~incremental =
    let o = Overlay.create g Overlay.Ip session in
    Max_flow.solve ~incremental g [| o |] ~epsilon:0.05
  in
  let a = solve ~incremental:true in
  let b = solve ~incremental:false in
  Alcotest.(check int) "same iterations" b.Max_flow.iterations a.Max_flow.iterations;
  checkf "same rate"
    (Solution.session_rate b.Max_flow.solution 0)
    (Solution.session_rate a.Max_flow.solution 0);
  let trees r =
    Solution.trees r.Max_flow.solution 0
    |> List.map (fun (t, rate) -> (Otree.key t, rate))
    |> List.sort (fun (ka, _) (kb, _) -> String.compare ka kb)
  in
  checkb "same trees and rates" true (trees a = trees b)

let suite =
  [
    Alcotest.test_case "ip incremental = scratch (property)" `Quick
      test_ip_incremental_matches_scratch;
    Alcotest.test_case "ip monotone skip = scratch (property)" `Quick
      test_ip_monotone_skip_matches_scratch;
    Alcotest.test_case "ip decreasing updates = scratch (property)" `Quick
      test_ip_decreasing_updates_match_scratch;
    Alcotest.test_case "arbitrary workspace = scratch (property)" `Quick
      test_arbitrary_workspace_matches_scratch;
    Alcotest.test_case "cross-check catches missed notification" `Quick
      test_cross_check_catches_missed_notification;
    Alcotest.test_case "solver output independent of engine" `Quick
      test_solver_output_invariant;
  ]
