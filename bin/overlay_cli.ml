(* Command-line front end: run any of the paper's experiments at any
   scale, or solve ad-hoc instances with the four algorithms. *)

open Cmdliner

let mode_conv =
  let parse = function
    | "ip" -> Ok Overlay.Ip
    | "arbitrary" | "arb" -> Ok Overlay.Arbitrary
    | s -> Error (`Msg (Printf.sprintf "unknown routing mode %S (ip|arbitrary)" s))
  in
  let print fmt m =
    Format.fprintf fmt "%s"
      (match m with Overlay.Ip -> "ip" | Overlay.Arbitrary -> "arbitrary")
  in
  Arg.conv (parse, print)

let sparsify_conv =
  let parse s =
    match Sparsify.of_string s with
    | Ok spec -> Ok spec
    | Error msg -> Error (`Msg msg)
  in
  let print fmt spec = Format.fprintf fmt "%s" (Sparsify.to_string spec) in
  Arg.conv (parse, print)

let seed =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let nodes =
  Arg.(
    value & opt int 100
    & info [ "nodes" ] ~docv:"N" ~doc:"Router count of the Waxman topology (Setup A).")

let mode =
  Arg.(
    value & opt mode_conv Overlay.Ip
    & info [ "mode" ] ~docv:"MODE" ~doc:"Routing mode: ip (Sec. II) or arbitrary (Sec. V).")

let ratios =
  Arg.(
    value
    & opt (list float) Exp_tables.paper_ratios
    & info [ "ratios" ] ~docv:"R,..." ~doc:"Approximation ratios to sweep.")

let sizes =
  Arg.(
    value & opt (list int) [ 7; 5 ]
    & info [ "sizes" ] ~docv:"S,..." ~doc:"Session sizes (Setup A).")

let demand =
  Arg.(value & opt float 100.0 & info [ "demand" ] ~docv:"D" ~doc:"Session demand.")

let make_setup seed nodes sizes demand =
  Setup.make_a ~seed
    {
      Setup.default_a with
      Setup.n_nodes = nodes;
      session_sizes = Array.of_list sizes;
      demand;
    }

(* --- tables ------------------------------------------------------------ *)

let tables_cmd =
  let run seed nodes sizes demand mode ratios =
    let setup = make_setup seed nodes sizes demand in
    let mf = Exp_tables.maxflow_sweep setup ~mode ~ratios in
    print_string
      (Exp_tables.render_mf
         ~title:
           (match mode with
           | Overlay.Ip -> "Table II (MaxFlow, IP routing)"
           | Overlay.Arbitrary -> "Table VII (MaxFlow, arbitrary routing)")
         mf);
    let mcf =
      Exp_tables.mcf_sweep setup ~mode ~ratios
        ~scaling:Max_concurrent_flow.Maxflow_weighted
    in
    print_string
      (Exp_tables.render_mcf
         ~title:
           (match mode with
           | Overlay.Ip -> "Table IV (MaxConcurrentFlow, IP routing)"
           | Overlay.Arbitrary -> "Table VIII (MaxConcurrentFlow, arbitrary routing)")
         mcf)
  in
  let doc = "Reproduce Tables II/IV (ip mode) or VII/VIII (arbitrary mode)." in
  Cmd.v
    (Cmd.info "tables" ~doc)
    Term.(const run $ seed $ nodes $ sizes $ demand $ mode $ ratios)

(* --- figures (Setup A) --------------------------------------------------- *)

let figures_cmd =
  let run seed nodes sizes demand mode ratios tree_limit repeats =
    let setup = make_setup seed nodes sizes demand in
    let mf = Exp_tables.maxflow_sweep setup ~mode ~ratios in
    let mf_sols =
      List.map
        (fun (r : Exp_tables.mf_row) ->
          (r.Exp_tables.ratio, r.Exp_tables.result.Max_flow.solution))
        mf
    in
    let header, data = Exp_figures.tree_rate_distribution mf_sols ~slot:0 in
    print_string
      (Tableau.series ~title:"Fig 2a: tree rate distribution, session 1 (MaxFlow)"
         ~columns:header data);
    let header, data = Exp_figures.tree_rate_distribution mf_sols ~slot:1 in
    print_string
      (Tableau.series ~title:"Fig 2b: tree rate distribution, session 2 (MaxFlow)"
         ~columns:header data);
    let header, data =
      Exp_figures.link_utilization_distribution setup ~mode mf_sols
    in
    print_string
      (Tableau.series ~title:"Fig 4a: link utilization (MaxFlow)" ~columns:header data);
    let limits = List.init tree_limit (fun i -> i + 1) in
    let random =
      Exp_figures.random_series setup ~mode ~ratio:0.95 ~tree_limits:limits ~repeats
    in
    let online =
      Exp_figures.online_series setup ~mode ~sigma:30.0 ~tree_limits:limits ~repeats
    in
    print_string
      (Exp_figures.render_limited ~title:"Fig 5a: overall throughput"
         ~columns:[ "max_trees"; "random"; "online_sigma_30" ]
         ~metric:(fun p -> p.Exp_figures.throughput)
         [ random; online ]);
    print_string
      (Exp_figures.render_limited ~title:"Fig 5b: rate of session 2"
         ~columns:[ "max_trees"; "random"; "online_sigma_30" ]
         ~metric:(fun p -> p.Exp_figures.session_rates.(1))
         [ random; online ]);
    print_string
      (Exp_figures.render_limited ~title:"Fig 6: distinct trees, session 1"
         ~columns:[ "max_trees"; "random"; "online_sigma_30" ]
         ~metric:(fun p -> p.Exp_figures.distinct_trees.(0))
         [ random; online ])
  in
  let tree_limit =
    Arg.(
      value & opt int 20
      & info [ "max-trees" ] ~docv:"N" ~doc:"Largest tree budget for Figs 5/6.")
  in
  let repeats =
    Arg.(
      value & opt int 100
      & info [ "repeats" ] ~docv:"N" ~doc:"Randomized repetitions to average.")
  in
  let doc = "Reproduce the Setup-A figures (2-11, mode selects IP/arbitrary)." in
  Cmd.v
    (Cmd.info "figures" ~doc)
    Term.(
      const run $ seed $ nodes $ sizes $ demand $ mode $ ratios $ tree_limit
      $ repeats)

(* --- eval (Setup B surfaces) ---------------------------------------------- *)

let eval_cmd =
  let run seed n_as routers counts sizes limits repeats =
    let grid =
      Exp_eval.small_grid ~n_as ~routers
        ~session_counts:(Array.of_list counts)
        ~session_sizes:(Array.of_list sizes) ~seed
    in
    let cells = Exp_eval.run_grid grid in
    print_string
      (Exp_eval.surface grid cells
         ~field:(fun c -> c.Exp_eval.mf_throughput)
         ~title:"Fig 12: overall throughput (MaxFlow)");
    print_string
      (Exp_eval.surface grid cells
         ~field:(fun c -> c.Exp_eval.edges_per_node)
         ~title:"Fig 13: physical edges per overlay node");
    print_string
      (Exp_eval.surface grid cells
         ~field:(fun c -> c.Exp_eval.mcf_min_rate)
         ~title:"Fig 15: minimum session rate (MCF)");
    print_string
      (Exp_eval.surface grid cells
         ~field:(fun c -> c.Exp_eval.throughput_ratio)
         ~title:"Fig 16: throughput ratio (MCF/MF)");
    List.iter
      (fun n ->
        let mcf_txt, mf_txt =
          Exp_eval.fig14 grid ~n_sessions:n ~sizes:(Array.of_list sizes)
        in
        print_string mcf_txt;
        print_string mf_txt;
        print_string (Exp_eval.fig17 grid ~n_sessions:n ~sizes:(Array.of_list sizes)))
      counts;
    List.iter
      (fun limit ->
        let online =
          Exp_eval.run_online_grid grid ~tree_limit:limit ~sigma:10.0 ~repeats
        in
        print_string
          (Exp_eval.online_surface grid online
             ~field:(fun c -> c.Exp_eval.throughput_ratio_vs_mf)
             ~title:
               (Printf.sprintf "Fig 18: online/MF throughput ratio (%d trees)" limit));
        print_string
          (Exp_eval.online_surface grid online
             ~field:(fun c -> c.Exp_eval.minrate_ratio_vs_mcf)
             ~title:
               (Printf.sprintf "Fig 19: online/MCF min-rate ratio (%d trees)" limit)))
      limits
  in
  let n_as =
    Arg.(value & opt int 10 & info [ "as" ] ~docv:"N" ~doc:"Number of ASes.")
  in
  let routers =
    Arg.(value & opt int 100 & info [ "routers" ] ~docv:"N" ~doc:"Routers per AS.")
  in
  let counts =
    Arg.(
      value
      & opt (list int) [ 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
      & info [ "counts" ] ~docv:"N,..." ~doc:"Session-count axis.")
  in
  let sizes =
    Arg.(
      value
      & opt (list int) [ 10; 20; 30; 40; 50; 60; 70; 80; 90 ]
      & info [ "sizes" ] ~docv:"S,..." ~doc:"Session-size axis.")
  in
  let limits =
    Arg.(
      value & opt (list int) [ 5; 60 ]
      & info [ "tree-limits" ] ~docv:"N,..." ~doc:"Tree budgets for Figs 18/19.")
  in
  let repeats =
    Arg.(
      value & opt int 10
      & info [ "repeats" ] ~docv:"N" ~doc:"Arrival orders to average (online).")
  in
  let doc = "Reproduce the Sec. VI surfaces (Figs 12-19) on the two-level topology." in
  Cmd.v
    (Cmd.info "eval" ~doc)
    Term.(const run $ seed $ n_as $ routers $ counts $ sizes $ limits $ repeats)

(* --- solve: ad-hoc instances ------------------------------------------------ *)

let solve_cmd =
  let run seed nodes sizes demand mode algorithm ratio sigma trace trace_stream
      trace_capacity jobs certify sparsify =
    let setup = make_setup seed nodes sizes demand in
    let g = setup.Setup.topology.Topology.graph in
    let overlays = Setup.overlays ~sparsify setup mode in
    if not (Sparsify.is_full sparsify) then
      Array.iteri
        (fun i o ->
          let k = Session.size (Overlay.session o) in
          Printf.printf
            "session %d: sparsify %s keeps %d of %d candidate overlay edges\n"
            i
            (Sparsify.to_string sparsify)
            (Overlay.n_overlay_edges o)
            (k * (k - 1) / 2))
        overlays;
    let par = Par.create ~jobs () in
    let tr =
      Option.map (fun _ -> Obs.Trace.create ~capacity:trace_capacity ()) trace
    in
    let stream = Option.map Obs_stream.create trace_stream in
    let obs =
      match (tr, stream) with
      | Some t, None -> Obs.Trace.sink t
      | None, Some s -> Obs_stream.sink s
      | Some t, Some s ->
        (* tee: the ring keeps the tail queryable in-process while the
           stream captures the full run *)
        let ts = Obs.Trace.sink t and ss = Obs_stream.sink s in
        Obs.Sink.make (fun kind ~session ~a ~b ->
            Obs.Sink.emit ts kind ~session ~a ~b;
            Obs.Sink.emit ss kind ~session ~a ~b)
      | None, None -> Obs.Sink.null
    in
    let write_trace () =
      (match (trace, tr) with
      | Some path, Some t ->
        Obs_export.trace_to_file path t;
        Printf.printf "wrote trace to %s (%d events recorded, %d dropped)\n"
          path (Obs.Trace.recorded t) (Obs.Trace.dropped t)
      | _ -> ());
      match stream with
      | Some s ->
        Obs_stream.close s;
        Printf.printf "wrote trace stream to %s (%d events, 0 dropped)\n"
          (Obs_stream.path s) (Obs_stream.emitted s)
      | None -> ()
    in
    let describe sol =
      let t =
        Tableau.create ~title:"solution"
          [ "session"; "members"; "rate"; "trees" ]
      in
      Array.iteri
        (fun i s ->
          Tableau.add_row t
            [
              string_of_int i;
              string_of_int (Session.size s);
              Printf.sprintf "%.2f" (Solution.session_rate sol i);
              string_of_int (Solution.n_trees sol i);
            ])
        setup.Setup.sessions;
      Tableau.print t;
      Printf.printf
        "overall throughput: %.2f | min rate: %.2f | jain: %.3f | feasible: %b\n"
        (Solution.overall_throughput sol)
        (Solution.min_rate sol)
        (Metrics.fairness_index sol)
        (Solution.is_feasible sol g ~tol:Check.default_tol)
    in
    let verdict =
      match algorithm with
      | "maxflow" ->
        let r =
          Max_flow.solve ~obs ~par g overlays
            ~epsilon:(Max_flow.ratio_to_epsilon ratio)
        in
        Printf.printf "MaxFlow: %d iterations, %d MST operations\n"
          r.Max_flow.iterations r.Max_flow.mst_operations;
        describe r.Max_flow.solution;
        if certify then Some (Check.certify_max_flow g overlays r) else None
      | "mcf" ->
        let scaling = Max_concurrent_flow.Maxflow_weighted in
        let r =
          Max_concurrent_flow.solve ~obs ~par g overlays
            ~epsilon:(Max_concurrent_flow.ratio_to_epsilon ratio)
            ~scaling
        in
        Printf.printf "MaxConcurrentFlow: %d phases, %d+%d MST operations\n"
          r.Max_concurrent_flow.phases r.Max_concurrent_flow.main_mst_operations
          r.Max_concurrent_flow.pre_mst_operations;
        describe r.Max_concurrent_flow.solution;
        if certify then Some (Check.certify_mcf g overlays ~scaling r) else None
      | "online" ->
        let r = Online.solve ~obs g overlays ~sigma in
        Printf.printf "Online: lmax %.3f\n" r.Online.lmax;
        describe r.Online.solution;
        if certify then Some (Check.certify g r.Online.solution) else None
      | "single-tree" ->
        let r = Baseline.single_tree g overlays in
        Printf.printf "Single tree baseline: lmax %.3f\n" r.Baseline.lmax;
        describe r.Baseline.solution;
        if certify then Some (Check.certify g r.Baseline.solution) else None
      | other ->
        Printf.eprintf "unknown algorithm %S\n" other;
        None
    in
    Option.iter (fun v -> Format.printf "%a@." Check.pp_verdict v) verdict;
    write_trace ();
    Par.shutdown par;
    match verdict with Some v when not (Check.ok v) -> exit 1 | _ -> ()
  in
  let algorithm =
    Arg.(
      value & opt string "maxflow"
      & info [ "algorithm"; "a" ] ~docv:"ALG"
          ~doc:"maxflow | mcf | online | single-tree.")
  in
  let ratio =
    Arg.(
      value & opt float 0.95
      & info [ "ratio" ] ~docv:"R" ~doc:"FPTAS approximation ratio.")
  in
  let sigma =
    Arg.(
      value & opt float 30.0
      & info [ "sigma" ] ~docv:"S" ~doc:"Online algorithm step size.")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Record the solver's telemetry event trace into a bounded ring \
             and write it as JSON to $(docv) (schema overlay-obs-trace/1, \
             see OBSERVABILITY.md).  Runs longer than the ring drop their \
             oldest events; use $(b,--trace-stream) for lossless capture.")
  in
  let trace_stream =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-stream" ] ~docv:"FILE"
          ~doc:
            "Stream every telemetry event to $(docv) as JSON-lines (schema \
             overlay-obs-trace/2): lossless capture with constant memory, \
             dropped is always 0.  Inspect with $(b,overlay_cli trace \
             summary) $(docv).")
  in
  let trace_capacity =
    Arg.(
      value & opt int 65536
      & info [ "trace-capacity" ] ~docv:"N"
          ~doc:
            "Ring capacity (events) for $(b,--trace).  The default 65536 \
             drops the early iterations of acceptance-size runs; raise it \
             or switch to $(b,--trace-stream).")
  in
  let jobs =
    Arg.(
      value
      & opt int (Par.default_jobs ())
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains for the parallel engine (default: \
             $(b,OVERLAY_JOBS) or the machine's recommended domain count; \
             1 = serial).  Output is bit-identical at any $(docv).")
  in
  let certify =
    Arg.(
      value & flag
      & info [ "certify" ]
          ~doc:
            "Re-derive the solution's certificate from scratch (spanning \
             trees, route integrity, recomputed loads; plus the weak \
             LP-duality bound for the FPTAS algorithms), print the verdict \
             and exit nonzero on any violation.")
  in
  let sparsify =
    Arg.(
      value
      & opt sparsify_conv Sparsify.full
      & info [ "sparsify" ] ~docv:"STRAT"
          ~doc:
            "Prune each session's candidate overlay edge set before \
             solving: $(b,full) (default, complete overlay), \
             $(b,k_nearest)[:K] (K cheapest edges per member by IP-route \
             latency), $(b,random_mix):R+N (R random + N nearest per \
             member), or $(b,cluster)[:C] (latency clusters, complete \
             inside, representatives across).  Bare names use \
             size-derived defaults; append $(b,@CAP) to additionally cap \
             the candidate structure at CAP spanning trees.  Every \
             strategy keeps the latency MST, so the pruned overlay stays \
             connected; with $(b,--certify) the certificate is relative \
             to the pruned candidate space (see SCALING.md).")
  in
  let doc = "Solve one instance and print per-session rates." in
  Cmd.v
    (Cmd.info "solve" ~doc)
    Term.(
      const run $ seed $ nodes $ sizes $ demand $ mode $ algorithm $ ratio
      $ sigma $ trace $ trace_stream $ trace_capacity $ jobs $ certify
      $ sparsify)

(* --- export: dump an instance + solution to files --------------------------- *)

let export_cmd =
  let run seed nodes sizes demand mode ratio outdir =
    if not (Sys.file_exists outdir) then Sys.mkdir outdir 0o755;
    let setup = make_setup seed nodes sizes demand in
    let g = setup.Setup.topology.Topology.graph in
    let overlays = Setup.overlays setup mode in
    let result =
      Max_flow.solve g overlays ~epsilon:(Max_flow.ratio_to_epsilon ratio)
    in
    let solution = result.Max_flow.solution in
    let path name = Filename.concat outdir name in
    Json_export.to_file (path "topology.json")
      (Json_export.topology setup.Setup.topology);
    Json_export.to_file (path "solution.json") (Json_export.solution solution);
    Dot_export.to_file (path "topology.dot")
      (Dot_export.topology setup.Setup.topology);
    Csv_export.to_file (path "trees.csv")
      (Csv_export.render
         ~header:[ "session"; "members"; "rate"; "physical_links" ]
         (Csv_export.solution_rows solution));
    Array.iteri
      (fun slot session ->
        (* best tree of each session rendered as DOT *)
        match
          List.sort
            (fun (_, a) (_, b) -> compare b a)
            (Solution.trees solution slot)
        with
        | (tree, _) :: _ ->
          Dot_export.to_file
            (path (Printf.sprintf "session%d_top_tree.dot" slot))
            (Dot_export.overlay_tree g tree ~members:session.Session.members);
          Csv_export.to_file
            (path (Printf.sprintf "session%d_rate_curve.csv" slot))
            (Csv_export.curve
               ~label:(Printf.sprintf "session%d" slot)
               (Metrics.tree_rate_curve solution slot))
        | [] -> ())
      setup.Setup.sessions;
    Printf.printf
      "wrote topology.{json,dot}, solution.json, trees.csv and per-session \
       tree/curve files to %s/\n"
      outdir
  in
  let ratio =
    Arg.(
      value & opt float 0.95
      & info [ "ratio" ] ~docv:"R" ~doc:"FPTAS approximation ratio.")
  in
  let outdir =
    Arg.(
      value & opt string "overlay_export"
      & info [ "out"; "o" ] ~docv:"DIR" ~doc:"Output directory.")
  in
  let doc = "Solve an instance with MaxFlow and export JSON/DOT/CSV artifacts." in
  Cmd.v
    (Cmd.info "export" ~doc)
    Term.(const run $ seed $ nodes $ sizes $ demand $ mode $ ratio $ outdir)

(* --- obs: dump the live metric registry -------------------------------------- *)

let obs_cmd =
  let run json =
    if json then print_endline (Json_export.to_string (Obs_export.registry ()))
    else begin
      let counters =
        Tableau.create ~title:"counters" [ "name"; "value"; "doc" ]
      in
      List.iter
        (fun (name, doc, value) ->
          Tableau.add_row counters [ name; string_of_int value; doc ])
        (Obs.Registry.counters ());
      Tableau.print counters;
      let gauges = Tableau.create ~title:"gauges" [ "name"; "value"; "doc" ] in
      List.iter
        (fun (name, doc, value) ->
          Tableau.add_row gauges [ name; Printf.sprintf "%g" value; doc ])
        (Obs.Registry.gauges ());
      Tableau.print gauges;
      let flags =
        Tableau.create ~title:"debug flags" [ "name"; "env"; "enabled"; "doc" ]
      in
      List.iter
        (fun (name, env, doc, enabled) ->
          Tableau.add_row flags
            [ name; env; (if enabled then "yes" else "no"); doc ])
        (Obs.Debug_flags.all ());
      Tableau.print flags
    end
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the registry as JSON (the $(b,Obs_export.registry) \
                object) instead of text tables.")
  in
  let doc =
    "Dump the live metric registry: every counter, gauge and debug flag \
     (the inventory documented in OBSERVABILITY.md), without running a \
     bench."
  in
  Cmd.v (Cmd.info "obs" ~doc) Term.(const run $ json)

(* --- trace: read and analyze captured traces ---------------------------------- *)

let load_trace path =
  match Obs_export.read_trace path with
  | Error msg ->
    Printf.eprintf "error: %s: %s\n" path msg;
    exit 1
  | Ok r ->
    List.iter (fun issue -> Printf.eprintf "warning: %s\n" issue) r.Obs_export.r_issues;
    r

let trace_file ~at ~docv =
  Arg.(
    required
    & pos at (some string) None
    & info [] ~docv ~doc:"Trace file (schema overlay-obs-trace/1 or /2).")

let trace_summary_cmd =
  let run path =
    let r = load_trace path in
    Printf.printf "trace: %s (schema %d%s)\n" path r.Obs_export.r_schema
      (if r.Obs_export.r_truncated then ", TRUNCATED" else "");
    Printf.printf "events: %d retained, %d emitted, %d dropped%s\n"
      (Array.length r.Obs_export.r_events)
      r.Obs_export.r_emitted r.Obs_export.r_dropped
      (match r.Obs_export.r_capacity with
      | Some c -> Printf.sprintf " (ring capacity %d)" c
      | None -> "");
    if r.Obs_export.r_issues <> [] then
      Printf.printf "validation issues: %d (see warnings above)\n"
        (List.length r.Obs_export.r_issues);
    let c = Analysis.convergence r.Obs_export.r_events in
    print_string (Analysis.render_convergence ~buckets:0 c);
    let t = Tableau.create ~title:"events by kind" [ "kind"; "count" ] in
    List.iter
      (fun (kind, n) ->
        Tableau.add_row t [ Obs.kind_name kind; string_of_int n ])
      (Analysis.kind_counts r.Obs_export.r_events);
    Tableau.print t
  in
  let doc =
    "Validate a trace and print its envelope, run header, objective and \
     per-kind event counts."
  in
  Cmd.v (Cmd.info "summary" ~doc)
    Term.(const run $ trace_file ~at:0 ~docv:"TRACE")

let trace_convergence_cmd =
  let run path csv buckets =
    let r = load_trace path in
    let c = Analysis.convergence r.Obs_export.r_events in
    if csv then print_string (Analysis.convergence_csv c)
    else print_string (Analysis.render_convergence ~buckets c)
  in
  let csv =
    Arg.(
      value & flag
      & info [ "csv" ]
          ~doc:
            "Emit the full per-iteration trajectory as CSV \
             (kind,iteration,time,dt,session,value) instead of the bucketed \
             text table.")
  in
  let buckets =
    Arg.(
      value & opt int 20
      & info [ "buckets" ] ~docv:"N"
          ~doc:"Iteration buckets for the text rendering.")
  in
  let doc =
    "Report the Garg-Konemann convergence trajectory: per-iteration routed \
     flow and inter-event time with rescale/demand-double markers."
  in
  Cmd.v (Cmd.info "convergence" ~doc)
    Term.(const run $ trace_file ~at:0 ~docv:"TRACE" $ csv $ buckets)

let trace_spans_cmd =
  let run path =
    let r = load_trace path in
    print_string (Analysis.render_spans (Analysis.span_profile r.Obs_export.r_events));
    print_string (Analysis.render_mst (Analysis.mst_efficiency r.Obs_export.r_events))
  in
  let doc =
    "Profile a trace's spans (count, total/self time, nesting) and the \
     MST-engine efficiency split (recomputes vs lazy skips vs weight \
     re-walks per session)."
  in
  Cmd.v (Cmd.info "spans" ~doc)
    Term.(const run $ trace_file ~at:0 ~docv:"TRACE")

let trace_diff_cmd =
  let run path_a path_b iter_tol obj_tol =
    let a = load_trace path_a and b = load_trace path_b in
    let d =
      Analysis.diff ~iter_tol ~obj_tol a.Obs_export.r_events
        b.Obs_export.r_events
    in
    print_string (Analysis.render_diff d);
    if not d.Analysis.equal then exit 1
  in
  let iter_tol =
    Arg.(
      value & opt int 0
      & info [ "iter-tol" ] ~docv:"N"
          ~doc:"Allowed absolute drift in iteration/phase/rescale counts.")
  in
  let obj_tol =
    Arg.(
      value & opt float 1e-9
      & info [ "obj-tol" ] ~docv:"F"
          ~doc:"Allowed relative drift in objective and total routed flow.")
  in
  let doc =
    "Structurally compare two traces (event counts by kind, \
     iteration/phase/objective drift under tolerances); exits non-zero \
     when they differ.  Timestamps and durations are ignored."
  in
  Cmd.v (Cmd.info "diff" ~doc)
    Term.(
      const run
      $ trace_file ~at:0 ~docv:"TRACE_A"
      $ trace_file ~at:1 ~docv:"TRACE_B"
      $ iter_tol $ obj_tol)

let trace_engine_cmd =
  let run path window csv strict =
    let r = load_trace path in
    if strict && r.Obs_export.r_issues <> [] then begin
      Printf.eprintf "error: %s: %d validation issue(s) under --strict\n" path
        (List.length r.Obs_export.r_issues);
      exit 1
    end;
    if r.Obs_export.r_schema_name <> Obs_export.schema_engine then
      Printf.eprintf
        "warning: %s carries schema %s, not %s; engine events may be absent\n"
        path r.Obs_export.r_schema_name Obs_export.schema_engine;
    let rep = Analysis.engine_report ?window r.Obs_export.r_events in
    if csv then print_string (Analysis.engine_csv rep)
    else print_string (Analysis.render_engine rep)
  in
  let window =
    Arg.(
      value
      & opt (some float) None
      & info [ "window" ] ~docv:"S"
          ~doc:
            "Window width in seconds (default: a tenth of the capture's \
             engine-event time range).")
  in
  let csv =
    Arg.(
      value & flag
      & info [ "csv" ]
          ~doc:
            "Emit one CSV row per window plus a total row instead of the \
             text report.")
  in
  let strict =
    Arg.(
      value & flag
      & info [ "strict" ]
          ~doc:
            "Exit nonzero if the reader found any validation issue (seq \
             gaps, non-monotonic time, truncated stream) — the CI gate.")
  in
  let doc =
    "Windowed report over an overlay-engine-trace/1 capture \
     ($(b,overlay_cli churn --trace-stream)): events/sec, joins/sec, \
     per-window p50/p90/p99/max re-solve latency, warm/cold split and \
     rung-escalation counts."
  in
  Cmd.v (Cmd.info "engine" ~doc)
    Term.(const run $ trace_file ~at:0 ~docv:"TRACE" $ window $ csv $ strict)

let trace_cmd =
  let doc =
    "Read captured telemetry traces (ring JSON or JSONL streams) and \
     report on solver behaviour."
  in
  Cmd.group (Cmd.info "trace" ~doc)
    [
      trace_summary_cmd;
      trace_convergence_cmd;
      trace_spans_cmd;
      trace_diff_cmd;
      trace_engine_cmd;
    ]

(* --- metrics: Prometheus exposition of the registry -------------------------- *)

let metrics_cmd =
  let run json out validate =
    match validate with
    | Some path ->
      let text = In_channel.with_open_text path In_channel.input_all in
      (match Metrics_export.validate text with
      | Ok () -> Printf.printf "%s: valid exposition\n" path
      | Error e ->
        Printf.eprintf "error: %s: %s\n" path e;
        exit 1)
    | None ->
      if json then print_endline (Json_export.to_string (Obs_export.registry ()))
      else (
        match out with
        | Some path ->
          Metrics_export.to_file path;
          Printf.printf "wrote metrics exposition to %s\n" path
        | None -> print_string (Metrics_export.prometheus ()))
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit the registry as JSON (the $(b,Obs_export.registry) \
             object, histograms included) instead of exposition text.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"FILE"
          ~doc:"Write the exposition to $(docv) instead of stdout.")
  in
  let validate =
    Arg.(
      value
      & opt (some string) None
      & info [ "validate" ] ~docv:"FILE"
          ~doc:
            "Instead of dumping, check $(docv) against the exposition \
             grammar (names, label syntax, cumulative histogram buckets, \
             +Inf/_count agreement) and exit nonzero on the first \
             violation.")
  in
  let doc =
    "Dump the live metric registry as Prometheus text exposition (format \
     0.0.4): counters, gauges, histograms (cumulative log buckets) and \
     debug flags.  In a fresh process this shows the zero state; \
     $(b,overlay_cli churn --metrics-out) writes the same dump after (or \
     during) a replay."
  in
  Cmd.v (Cmd.info "metrics" ~doc) Term.(const run $ json $ out $ validate)

(* --- churn: replay a churn trace through the re-solve engine ---------------- *)

let churn_cmd =
  let run seed nodes mode algorithm ratio sparsify path verbose trace_stream
      metrics_out metrics_interval =
    let rng = Rng.create seed in
    let topology = Waxman.generate rng { Waxman.default_params with n = nodes } in
    let graph = topology.Topology.graph in
    let trace =
      let ic = open_in path in
      Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
          Churn.read_trace ic)
    in
    Printf.printf "network: %d routers, %d links; trace: %d events\n"
      (Topology.n_nodes topology) (Topology.n_links topology)
      (List.length trace);
    let solver, epsilon =
      match algorithm with
      | "maxflow" -> (Engine.Maxflow, Max_flow.ratio_to_epsilon ratio)
      | "mcf" ->
        ( Engine.Mcf
            {
              variant = Max_concurrent_flow.Paper;
              scaling = Max_concurrent_flow.Maxflow_weighted;
            },
          Max_concurrent_flow.ratio_to_epsilon ratio )
      | other -> failwith (Printf.sprintf "unknown algorithm %S (maxflow|mcf)" other)
    in
    let stream =
      Option.map
        (fun f -> Obs_stream.create ~schema:Obs_export.schema_engine f)
        trace_stream
    in
    let obs =
      match stream with
      | Some s -> Obs_stream.sink s
      | None -> Obs.Sink.null
    in
    let config =
      { Engine.default_config with Engine.solver; epsilon; mode; sparsify; obs }
    in
    let t = Engine.create ~config graph [||] in
    let dump_metrics () = Option.iter Metrics_export.to_file metrics_out in
    let t0 = Obs.now () in
    let reports =
      match metrics_interval with
      | Some n when n > 0 && metrics_out <> None ->
        (* live scrape surface: re-write the exposition every N events *)
        let i = ref 0 in
        List.map
          (fun te ->
            let r = Engine.apply t te in
            incr i;
            if !i mod n = 0 then dump_metrics ();
            r)
          trace
      | _ -> Engine.replay t trace
    in
    let wall = Obs.now () -. t0 in
    if verbose then
      List.iter
        (fun (r : Engine.report) ->
          Printf.printf
            "%8.2f  %-40s k=%-3d %s attempts=%d obj=%10.3f  %6.2fms\n"
            r.Engine.at
            (match r.Engine.event with
            | Some e -> Churn.event_to_string e
            | None -> "-")
            r.Engine.k
            (if r.Engine.warm then "warm" else "cold")
            r.Engine.attempts r.Engine.objective
            (r.Engine.total_s *. 1e3))
        reports;
    (* the engine feeds every event's latency into the registered
       [engine.resolve_s] histogram (same samples as the reports), so
       the summary quotes the histogram — identical figures to
       [--metrics-out] and to [trace engine] over the streamed capture,
       within the histogram's 2.2% relative-error bound *)
    let pct =
      let h = Obs.Histogram.make "engine.resolve_s" in
      fun p -> Obs.Histogram.quantile h p
    in
    let uncertified =
      List.length
        (List.filter (fun (r : Engine.report) -> not r.Engine.certified) reports)
    in
    let s = Engine.stats t in
    Printf.printf
      "replayed %d events in %.2fs (%.1f events/s): %d warm / %d cold, \
       latency p50 %.2fms p99 %.2fms, %d active sessions, objective %.3f\n"
      (List.length reports) wall
      (float_of_int (List.length reports) /. Float.max wall 1e-9)
      s.Engine.warm_accepted s.Engine.cold_solves
      (pct 0.50 *. 1e3) (pct 0.99 *. 1e3)
      (Engine.n_sessions t) (Engine.objective t);
    (match stream with
    | Some s ->
      Obs_stream.close s;
      Printf.printf "wrote engine trace to %s (%d events, 0 dropped)\n"
        (Obs_stream.path s) (Obs_stream.emitted s)
    | None -> ());
    (match metrics_out with
    | Some f ->
      Metrics_export.to_file f;
      Printf.printf "wrote metrics exposition to %s\n" f
    | None -> ());
    if uncertified > 0 then begin
      Printf.printf "%d events failed certification\n" uncertified;
      exit 1
    end
  in
  let algorithm =
    Arg.(
      value & opt string "maxflow"
      & info [ "algorithm"; "a" ] ~docv:"ALG" ~doc:"maxflow | mcf.")
  in
  let ratio =
    Arg.(
      value & opt float 0.95
      & info [ "ratio" ] ~docv:"R" ~doc:"FPTAS approximation ratio.")
  in
  let sparsify =
    Arg.(
      value
      & opt sparsify_conv Sparsify.full
      & info [ "sparsify" ] ~docv:"STRAT"
          ~doc:"Candidate overlay edge policy for joining sessions.")
  in
  let trace_file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"TRACE"
          ~doc:
            "Churn trace file, one event per line: $(i,<time> join id=3 \
             demand=1 members=0,5,9), $(i,<time> leave id=3), $(i,<time> \
             demand id=3 demand=2.5), $(i,<time> capacity edge=14 \
             capacity=80).")
  in
  let verbose =
    Arg.(
      value & flag
      & info [ "verbose"; "v" ] ~doc:"Print one line per replayed event.")
  in
  let trace_stream =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-stream" ] ~docv:"FILE"
          ~doc:
            "Stream the engine's churn-level telemetry (schema \
             overlay-engine-trace/1: event_start/event_end, rung \
             attempts, cold fallbacks, certify failures, plus the \
             solver's own events) to $(docv) as JSON-lines.  Report on \
             it afterwards with $(b,overlay_cli trace engine) $(docv).")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:
            "Write the metric registry (counters and the engine's latency \
             histograms) as Prometheus text exposition to $(docv) after \
             the replay — and during it with $(b,--metrics-interval).")
  in
  let metrics_interval =
    Arg.(
      value
      & opt (some int) None
      & info [ "metrics-interval" ] ~docv:"N"
          ~doc:
            "Re-write $(b,--metrics-out) every $(docv) events during the \
             replay, making the file a live scrape surface.")
  in
  let doc =
    "Replay a churn trace (joins, leaves, demand and capacity changes) \
     through the warm-started re-solve engine and report events/sec, \
     p50/p99 re-solve latency (via the registered engine histograms, \
     2.2% relative-error bound) and the warm/cold split.  Every accepted \
     state is certificate-checked; exits nonzero if any event's solution \
     failed certification."
  in
  Cmd.v (Cmd.info "churn" ~doc)
    Term.(
      const run $ seed $ nodes $ mode $ algorithm $ ratio $ sparsify
      $ trace_file $ verbose $ trace_stream $ metrics_out $ metrics_interval)

(* --- serve / client: the control-plane daemon over overlay-wire/1 ----------- *)

let engine_solver algorithm ratio =
  match algorithm with
  | "maxflow" -> (Engine.Maxflow, Max_flow.ratio_to_epsilon ratio)
  | "mcf" ->
    ( Engine.Mcf
        {
          variant = Max_concurrent_flow.Paper;
          scaling = Max_concurrent_flow.Maxflow_weighted;
        },
      Max_concurrent_flow.ratio_to_epsilon ratio )
  | other -> failwith (Printf.sprintf "unknown algorithm %S (maxflow|mcf)" other)

let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path.")

let port_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "port" ] ~docv:"PORT" ~doc:"TCP port on 127.0.0.1.")

let addr_to_string = function
  | Unix.ADDR_UNIX path -> Printf.sprintf "unix:%s" path
  | Unix.ADDR_INET (host, port) ->
    Printf.sprintf "tcp:%s:%d" (Unix.string_of_inet_addr host) port

let serve_cmd =
  let run seed nodes mode algorithm ratio sparsify socket port max_frame
      max_sessions metrics_out metrics_interval =
    if socket = None && port = None then begin
      prerr_endline "serve: need --socket PATH and/or --port PORT";
      exit 2
    end;
    let rng = Rng.create seed in
    let topology = Waxman.generate rng { Waxman.default_params with n = nodes } in
    let graph = topology.Topology.graph in
    let solver, epsilon = engine_solver algorithm ratio in
    let config =
      { Engine.default_config with Engine.solver; epsilon; mode; sparsify }
    in
    let engine = Engine.create ~config graph [||] in
    let limits =
      { Wire.default_limits with Wire.max_frame; max_sessions }
    in
    let addrs =
      (match socket with Some p -> [ Unix.ADDR_UNIX p ] | None -> [])
      @
      match port with
      | Some p -> [ Unix.ADDR_INET (Unix.inet_addr_loopback, p) ]
      | None -> []
    in
    let daemon =
      Daemon.create
        ~config:{ Daemon.default_config with Daemon.limits }
        ~engine addrs
    in
    Printf.printf
      "overlay-wire/%d daemon: %d routers, %d links, %s ratio %.2f\n"
      Wire.version (Topology.n_nodes topology) (Topology.n_links topology)
      algorithm ratio;
    List.iter
      (fun a -> Printf.printf "listening on %s\n" (addr_to_string a))
      addrs;
    flush stdout;
    let metrics_out = Option.map (fun f -> (f, metrics_interval)) metrics_out in
    Daemon.run ?metrics_out daemon;
    let s = Daemon.stats daemon in
    Printf.printf
      "drained: %d connections, %d frames in, %d events applied, %d errors \
       sent, %d active sessions, objective %.3f\n"
      s.Daemon.accepted s.Daemon.frames_in s.Daemon.events_applied
      s.Daemon.errors_sent
      (Engine.n_sessions engine)
      (Engine.objective engine)
  in
  let algorithm =
    Arg.(
      value & opt string "maxflow"
      & info [ "algorithm"; "a" ] ~docv:"ALG" ~doc:"maxflow | mcf.")
  in
  let ratio =
    Arg.(
      value & opt float 0.95
      & info [ "ratio" ] ~docv:"R" ~doc:"FPTAS approximation ratio.")
  in
  let sparsify =
    Arg.(
      value
      & opt sparsify_conv Sparsify.full
      & info [ "sparsify" ] ~docv:"STRAT"
          ~doc:"Candidate overlay edge policy for joining sessions.")
  in
  let max_frame =
    Arg.(
      value
      & opt int Wire.default_limits.Wire.max_frame
      & info [ "max-frame" ] ~docv:"BYTES"
          ~doc:"Largest accepted frame body; oversized frames are refused.")
  in
  let max_sessions =
    Arg.(
      value
      & opt int Wire.default_limits.Wire.max_sessions
      & info [ "max-sessions" ] ~docv:"N"
          ~doc:"Joins beyond $(docv) active sessions are refused.")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:
            "Re-write the Prometheus exposition to $(docv) every \
             $(b,--metrics-interval) seconds while serving (clients can \
             also pull it over the wire with $(b,metrics_pull)).")
  in
  let metrics_interval =
    Arg.(
      value & opt float 5.0
      & info [ "metrics-interval" ] ~docv:"SECONDS"
          ~doc:"Interval for $(b,--metrics-out) rewrites.")
  in
  let doc =
    "Run the always-on control-plane daemon: listen on a Unix-domain \
     socket and/or a loopback TCP port, feed overlay-wire/1 churn events \
     into the warm-started re-solve engine, and stream a solve_report per \
     event.  Malformed frames get an error reply and a closed connection; \
     SIGTERM drains in-flight events before exit."
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const run $ seed $ nodes $ mode $ algorithm $ ratio $ sparsify
      $ socket_arg $ port_arg $ max_frame $ max_sessions $ metrics_out
      $ metrics_interval)

let client_cmd =
  let run socket host port path metrics_pull verbose wait =
    let addr =
      match (socket, port) with
      | Some p, _ -> Unix.ADDR_UNIX p
      | None, Some p ->
        let inet =
          try Unix.inet_addr_of_string host
          with Failure _ -> (
            try (Unix.gethostbyname host).Unix.h_addr_list.(0)
            with Not_found ->
              prerr_endline (Printf.sprintf "client: unknown host %S" host);
              exit 2)
        in
        Unix.ADDR_INET (inet, p)
      | None, None ->
        prerr_endline "client: need --socket PATH or --port PORT";
        exit 2
    in
    let trace =
      let ic = open_in path in
      Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
          Churn.read_trace ic)
    in
    let c =
      try Wire_client.connect_retry ~attempts:(if wait then 100 else 1) addr
      with Unix.Unix_error (e, _, _) ->
        prerr_endline
          (Printf.sprintf "client: cannot connect to %s: %s"
             (addr_to_string addr) (Unix.error_message e));
        exit 1
    in
    (match Wire_client.handshake c with
    | Ok limits ->
      Printf.printf
        "connected to %s: overlay-wire/%d, max_frame %d, max_sessions %d\n"
        (addr_to_string addr) Wire.version limits.Wire.max_frame
        limits.Wire.max_sessions
    | Error msg ->
      prerr_endline (Printf.sprintf "client: handshake failed: %s" msg);
      exit 1);
    let latencies = ref [] in
    let joins = ref 0 in
    let uncertified = ref 0 in
    let rejected = ref 0 in
    let t0 = Obs.now () in
    List.iter
      (fun (te : Churn.timed) ->
        let sent = Obs.now () in
        Wire_client.send c (Wire_event.to_frame te);
        match Wire_client.recv c with
        | Ok (Wire.Solve_report { k; warm; certified; objective; _ }) ->
          latencies := (Obs.now () -. sent) :: !latencies;
          (match te.Churn.event with
          | Churn.Session_join _ -> incr joins
          | _ -> ());
          if not certified then incr uncertified;
          if verbose then
            Printf.printf "%8.2f  %-40s k=%-3d %s obj=%10.3f\n" te.Churn.at
              (Churn.event_to_string te.Churn.event)
              k
              (if warm then "warm" else "cold")
              objective
        | Ok (Wire.Error { code; message }) ->
          incr rejected;
          Printf.eprintf "event rejected (%s): %s\n"
            (Wire.error_code_name code) message
        | Ok f ->
          incr rejected;
          Printf.eprintf "unexpected reply %s\n" (Wire.frame_name f)
        | Error msg ->
          prerr_endline (Printf.sprintf "client: transport failed: %s" msg);
          exit 1)
      trace;
    let wall = Obs.now () -. t0 in
    let lat = Array.of_list (List.rev !latencies) in
    Printf.printf
      "replayed %d events in %.2fs over the wire: round-trip p50 %.2fms \
       p99 %.2fms, %.1f joins/s sustained\n"
      (List.length trace) wall
      (if Array.length lat = 0 then 0.0 else Stats.percentile lat 50.0 *. 1e3)
      (if Array.length lat = 0 then 0.0 else Stats.percentile lat 99.0 *. 1e3)
      (float_of_int !joins /. Float.max wall 1e-9);
    (match metrics_pull with
    | Some file -> (
      Wire_client.send c (Wire.Metrics_pull { format = Wire.Prometheus });
      match Wire_client.recv c with
      | Ok (Wire.Metrics_reply { body; _ }) ->
        let oc = open_out file in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () -> output_string oc body);
        Printf.printf "pulled %d bytes of exposition to %s\n"
          (String.length body) file
      | Ok f ->
        prerr_endline
          (Printf.sprintf "client: expected metrics_reply, got %s"
             (Wire.frame_name f));
        exit 1
      | Error msg ->
        prerr_endline (Printf.sprintf "client: metrics pull failed: %s" msg);
        exit 1)
    | None -> ());
    Wire_client.close c;
    if !uncertified > 0 || !rejected > 0 then begin
      Printf.printf "%d events uncertified, %d rejected\n" !uncertified
        !rejected;
      exit 1
    end
  in
  let host =
    Arg.(
      value & opt string "127.0.0.1"
      & info [ "host" ] ~docv:"HOST" ~doc:"TCP host (with --port).")
  in
  let trace_file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"TRACE" ~doc:"Churn trace file to replay over the wire.")
  in
  let metrics_pull =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-pull" ] ~docv:"FILE"
          ~doc:
            "After the replay, pull the daemon's Prometheus exposition over \
             the wire and write it to $(docv).")
  in
  let verbose =
    Arg.(
      value & flag
      & info [ "verbose"; "v" ] ~doc:"Print one line per replayed event.")
  in
  let wait =
    Arg.(
      value & flag
      & info [ "wait" ]
          ~doc:"Retry the connection for up to 5s (daemon still starting).")
  in
  let doc =
    "Replay a churn trace against a running daemon over overlay-wire/1 and \
     report p50/p99 round-trip latency and sustained joins per second.  \
     Exits nonzero if any event was rejected or its solution failed \
     certification."
  in
  Cmd.v (Cmd.info "client" ~doc)
    Term.(
      const run $ socket_arg $ host $ port_arg $ trace_file $ metrics_pull
      $ verbose $ wait)

(* --- topo: inspect generated topologies ------------------------------------- *)

let topo_cmd =
  let run seed kind nodes n_as routers =
    let rng = Rng.create seed in
    let t =
      match kind with
      | "waxman" -> Waxman.generate rng { Waxman.default_params with n = nodes }
      | "barabasi" ->
        Barabasi.generate rng { Barabasi.default_params with n = nodes }
      | "two-level" ->
        Two_level.generate rng (Two_level.small_params ~n_as ~routers_per_as:routers)
      | other -> failwith (Printf.sprintf "unknown topology kind %S" other)
    in
    let g = t.Topology.graph in
    let degrees = Array.init (Graph.n_vertices g) (fun v -> float_of_int (Graph.degree g v)) in
    Printf.printf "%s: %d nodes, %d links, %s\n" kind (Topology.n_nodes t)
      (Topology.n_links t)
      (match Topology.check t with None -> "connected" | Some e -> e);
    Printf.printf "degree: %s\n" (Stats.summary degrees)
  in
  let kind =
    Arg.(
      value & opt string "waxman"
      & info [ "kind"; "k" ] ~docv:"KIND" ~doc:"waxman | barabasi | two-level.")
  in
  let n_as =
    Arg.(value & opt int 10 & info [ "as" ] ~docv:"N" ~doc:"ASes (two-level).")
  in
  let routers =
    Arg.(
      value & opt int 100 & info [ "routers" ] ~docv:"N" ~doc:"Routers per AS.")
  in
  let doc = "Generate a topology and print its statistics." in
  Cmd.v (Cmd.info "topo" ~doc) Term.(const run $ seed $ kind $ nodes $ n_as $ routers)

let () =
  let doc =
    "Optimized capacity utilization in overlay networks (Cui/Li/Nahrstedt, SPAA 2004)"
  in
  let info = Cmd.info "overlay_cli" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ tables_cmd; figures_cmd; eval_cmd; solve_cmd; export_cmd; churn_cmd; serve_cmd; client_cmd; topo_cmd; obs_cmd; metrics_cmd; trace_cmd ]))
